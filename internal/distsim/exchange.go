package distsim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"scalegnn/internal/fault"
	"scalegnn/internal/graph"
	"scalegnn/internal/partition"
	"scalegnn/internal/tensor"
)

// DefaultExchangeTimeout bounds how long a worker waits for boundary
// features before declaring them lost. A synchronous step with a dropped
// message would otherwise block forever — the failure mode this package
// exists to surface, not exhibit.
const DefaultExchangeTimeout = 5 * time.Second

// boundaryMsg is one boundary-feature transfer: the global node id and its
// feature row, sent from the owning worker to a part that aggregates it.
type boundaryMsg struct {
	node int
	row  []float64
}

// transfer is one planned boundary send: node's features go to part to.
type transfer struct{ node, to int }

// Exchange executes one synchronous partition-parallel propagation step
// (neighbor-sum aggregation of x) with real per-worker goroutines and real
// message passing, rather than the closed-form cost model in Simulate:
// every worker sends each of its boundary nodes' feature rows once to each
// remote part that aggregates them, waits for the boundary rows it needs,
// and then aggregates its own nodes using local rows for local neighbors
// and received copies for remote ones. The result is bitwise identical to
// the sequential aggregation (same CSR neighbor order per row).
//
// Failpoints (internal/fault): "distsim.send" is evaluated once per
// boundary message. Arming it with "drop" loses that message — the
// receiving worker then fails loudly after timeout with a count of the
// missing rows instead of hanging the step; "sleep:<ms>" delays delivery;
// "error" aborts the sending worker. timeout <= 0 means
// DefaultExchangeTimeout.
//
// Cancelling ctx releases every worker goroutine promptly (a worker blocked
// waiting for boundary rows returns ctx.Err() instead of running out its
// timeout); a nil ctx means "never cancelled".
func Exchange(ctx context.Context, g *graph.CSR, a *partition.Assignment, x *tensor.Matrix, timeout time.Duration) (*tensor.Matrix, error) {
	if len(a.Parts) != g.N {
		return nil, fmt.Errorf("distsim: assignment covers %d of %d nodes", len(a.Parts), g.N)
	}
	if x.Rows != g.N {
		return nil, fmt.Errorf("distsim: features have %d rows for %d nodes", x.Rows, g.N)
	}
	if a.K < 1 {
		return nil, fmt.Errorf("distsim: k=%d < 1", a.K)
	}
	if timeout <= 0 {
		timeout = DefaultExchangeTimeout
	}

	// Plan the exchange from the partition structure: sends[w] lists the
	// distinct (node, remote part) transfers worker w originates, and
	// expect[w] counts the boundary rows worker w must receive — the same
	// quantities Simulate prices, but materialized as actual messages.
	sends := make([][]transfer, a.K)
	expect := make([]int, a.K)
	seen := make(map[int]struct{}, a.K)
	for u := 0; u < g.N; u++ {
		pu := a.Parts[u]
		clear(seen)
		for _, v := range g.Neighbors(u) {
			pv := a.Parts[v]
			if pv == pu {
				continue
			}
			if _, dup := seen[pv]; !dup {
				seen[pv] = struct{}{}
				sends[pu] = append(sends[pu], transfer{node: u, to: pv})
				expect[pv]++
			}
		}
	}

	// Inboxes are buffered to their exact expected volume, so a sender
	// never blocks on a slow receiver: the only way a worker stalls is a
	// genuinely missing message, and that is bounded by the timeout.
	inbox := make([]chan boundaryMsg, a.K)
	for w := range inbox {
		inbox[w] = make(chan boundaryMsg, expect[w])
	}

	out := tensor.New(x.Rows, x.Cols)
	errs := make([]error, a.K)
	done := make(chan int, a.K)
	for w := 0; w < a.K; w++ {
		//lint:ignore naked-go simulated cluster workers are long-lived message-passing actors, not data-parallel chunks for par.Range
		go func(w int) {
			defer func() { done <- w }()
			errs[w] = runWorker(ctx, g, a, x, out, w, sends[w], expect[w], inbox, timeout)
		}(w)
	}
	for i := 0; i < a.K; i++ {
		<-done
	}
	if err := errors.Join(errs...); err != nil {
		return nil, fmt.Errorf("distsim: exchange step failed: %w", err)
	}
	return out, nil
}

// runWorker is one simulated worker's synchronous step: send boundary
// rows, collect the expected remote rows (or time out loudly), aggregate.
func runWorker(ctx context.Context, g *graph.CSR, a *partition.Assignment, x, out *tensor.Matrix, w int,
	sends []transfer, expect int, inbox []chan boundaryMsg, timeout time.Duration) error {
	// A nil channel blocks forever, so a nil ctx degrades to the pure
	// timer-bounded behaviour.
	var cancelled <-chan struct{}
	if ctx != nil {
		cancelled = ctx.Done()
	}
	dropped := 0
	for _, tr := range sends {
		if err := fault.Inject("distsim.send"); err != nil {
			if errors.Is(err, fault.ErrDrop) {
				dropped++ // message lost in transit; the receiver will notice
				continue
			}
			return fmt.Errorf("worker %d: send %d->%d: %w", w, tr.node, tr.to, err)
		}
		inbox[tr.to] <- boundaryMsg{node: tr.node, row: x.Row(tr.node)}
	}

	remote := make(map[int][]float64, expect)
	if expect > 0 {
		deadline := time.NewTimer(timeout)
		defer deadline.Stop()
		for len(remote) < expect {
			select {
			case m := <-inbox[w]:
				remote[m.node] = m.row
			case <-cancelled:
				return fmt.Errorf("worker %d: exchange cancelled: %w", w, ctx.Err())
			case <-deadline.C:
				return fmt.Errorf("worker %d: received %d of %d boundary rows within %v (messages lost)",
					w, len(remote), expect, timeout)
			}
		}
	}
	if dropped > 0 {
		return fmt.Errorf("worker %d: dropped %d outgoing boundary messages", w, dropped)
	}

	for u := 0; u < g.N; u++ {
		if a.Parts[u] != w {
			continue
		}
		dst := out.Row(u)
		for _, v32 := range g.Neighbors(u) {
			v := int(v32)
			src := x.Row(v)
			if a.Parts[v] != w {
				var ok bool
				if src, ok = remote[v]; !ok {
					return fmt.Errorf("worker %d: aggregating node %d: boundary row %d never arrived", w, u, v)
				}
			}
			for j, s := range src {
				dst[j] += s
			}
		}
	}
	return nil
}
