package ckpt

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
)

// TestFloat32BlockRoundTrip proves the version-2 format carries mixed-dtype
// blocks losslessly: float32 payloads keep their exact bits, float64 blocks
// are unaffected, and the widening/narrowing accessors convert.
func TestFloat32BlockRoundTrip(t *testing.T) {
	want := &Snapshot{
		Fingerprint: 42, Epoch: 3, Batch: -1, BestEpoch: -1, PatienceAnchor: 2,
		BestVal: 0.75,
		RNG:     []byte{9, 8, 7},
		Blocks: []Block{
			{Name: "w32", Dtype: Float32, Rows: 2, Cols: 2,
				Data32: []float32{1.5, -2.25, 3e-8, 4096.125}},
			{Name: "w64", Rows: 1, Cols: 3, Data: []float64{1, math.Pi, -1e-12}},
		},
	}
	got, err := Decode(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(got.Blocks))
	}
	b32 := got.Blocks[0]
	if b32.Dtype != Float32 || b32.Name != "w32" || b32.Rows != 2 || b32.Cols != 2 {
		t.Fatalf("float32 block header corrupted: %+v", b32)
	}
	for i, v := range want.Blocks[0].Data32 {
		if b32.Data32[i] != v {
			t.Fatalf("float32 payload[%d] = %v, want %v (must be bit-exact)", i, b32.Data32[i], v)
		}
	}
	if b32.Len() != 4 {
		t.Fatalf("float32 block Len() = %d, want 4", b32.Len())
	}
	// Accessors: Float32 on a Float32 block returns the payload, Float64
	// widens it.
	wide := b32.Float64()
	for i, v := range b32.Data32 {
		if wide[i] != float64(v) {
			t.Fatalf("Float64()[%d] = %v, want %v", i, wide[i], float64(v))
		}
	}
	b64 := got.Blocks[1]
	if b64.Dtype != Float64 {
		t.Fatalf("float64 block decoded with dtype %d", b64.Dtype)
	}
	for i, v := range want.Blocks[1].Data {
		if b64.Data[i] != v {
			t.Fatalf("float64 payload[%d] = %v, want %v", i, b64.Data[i], v)
		}
	}
	narrow := b64.Float32()
	for i, v := range b64.Data {
		if narrow[i] != float32(v) {
			t.Fatalf("Float32()[%d] = %v, want %v", i, narrow[i], float32(v))
		}
	}
}

// encodeV1 serializes a float64-only snapshot in the pre-dtype version-1
// layout: identical to version 2 except the per-block header has no dtype
// byte and every payload is float64.
func encodeV1(s *Snapshot) []byte {
	var buf []byte
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, versionV1)
	buf = binary.LittleEndian.AppendUint64(buf, s.Fingerprint)
	for _, v := range [...]int{s.Epoch, s.Batch, s.OptStep, s.BestEpoch, s.PatienceAnchor} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.BestVal))
	buf = appendBytes(buf, s.RNG)
	buf = appendBytes(buf, s.RNGEpoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Blocks)))
	for _, b := range s.Blocks {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(b.Name)))
		buf = append(buf, b.Name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Rows))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Cols))
		for _, v := range b.Data {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// TestDecodeV1PreDtypeSnapshot proves backward compatibility: a snapshot
// written before the dtype tag existed decodes with every block tagged
// Float64 and payloads intact.
func TestDecodeV1PreDtypeSnapshot(t *testing.T) {
	want := sampleSnapshot(0xfeedface)
	got, err := Decode(encodeV1(want))
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if got.Fingerprint != want.Fingerprint || got.Epoch != want.Epoch ||
		got.BestVal != want.BestVal {
		t.Fatalf("v1 header mismatch: got %+v", got)
	}
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("got %d blocks, want %d", len(got.Blocks), len(want.Blocks))
	}
	for i, b := range got.Blocks {
		if b.Dtype != Float64 {
			t.Fatalf("v1 block %q decoded with dtype %d, want Float64", b.Name, b.Dtype)
		}
		if b.Name != want.Blocks[i].Name || b.Rows != want.Blocks[i].Rows || b.Cols != want.Blocks[i].Cols {
			t.Fatalf("v1 block %d header mismatch: %+v", i, b)
		}
		for j, v := range want.Blocks[i].Data {
			if b.Data[j] != v {
				t.Fatalf("v1 block %q payload[%d] = %v, want %v", b.Name, j, b.Data[j], v)
			}
		}
	}
}
