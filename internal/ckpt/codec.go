// Package ckpt implements durable training checkpoints: a versioned,
// CRC32-checksummed binary snapshot format holding model parameters,
// optimizer moments, the RNG state, and the training cursor, plus a
// crash-safe file writer (temp file -> fsync -> rename -> dir fsync) and
// a keep-last-N Manager that falls back past torn or corrupt files on
// resume.
//
// Snapshot layout (little-endian, version 3):
//
//	offset  size  field
//	0       8     magic "SGNNCKPT"
//	8       4     format version (uint32)
//	12      8     run fingerprint (uint64)
//	20      8*5   epoch, batch, optStep, bestEpoch, patienceAnchor (int64)
//	60      8     bestVal (float64 bits)
//	...           RNG state        (uint32 length + bytes)
//	...           epoch RNG state  (uint32 length + bytes)
//	...           auxiliary state  (uint32 length + bytes)
//	...           block count (uint32), then per block:
//	                name (uint16 length + bytes), dtype (uint8),
//	                rows (uint32), cols (uint32), rows*cols values
//	                (8 bytes each for Float64 blocks, 4 for Float32)
//	end-4   4     CRC32 (IEEE) over every preceding byte
//
// Version 2 lacks the auxiliary-state blob (it decodes as empty); version 1
// additionally has no per-block dtype byte (every payload float64). Decode
// reads all three; Encode always writes version 3. The auxiliary blob is
// opaque to this package — the training engine uses it to carry subsystem
// state that must travel with the cursor (e.g. the distributed runtime's
// exchange-round counter).
//
// The trailing checksum makes truncation and bit flips indistinguishable
// from "not a checkpoint" at read time; the fingerprint rejects resuming
// a run against a different graph, model, or hyperparameter set.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Format constants.
const (
	magic   = "SGNNCKPT"
	Version = 3
	// versionV2 is the pre-aux format: no auxiliary-state blob. Still
	// readable (Aux decodes as nil).
	versionV2 = 2
	// versionV1 is the pre-dtype format: no per-block dtype byte, all
	// payloads float64. Still readable.
	versionV1 = 1
)

// Dtype tags a block's element type. The zero value is Float64, so v1
// snapshots (and zero-valued Blocks) decode as the reference dtype.
type Dtype uint8

// Block element types.
const (
	Float64 Dtype = 0
	Float32 Dtype = 1
)

func (d Dtype) String() string {
	switch d {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("Dtype(%d)", uint8(d))
	}
}

// elemSize returns the on-disk bytes per element, or 0 for an unknown tag.
func (d Dtype) elemSize() int {
	switch d {
	case Float64:
		return 8
	case Float32:
		return 4
	default:
		return 0
	}
}

// Typed decode errors. Manager.Latest skips snapshots failing with
// ErrTruncated, ErrChecksum, ErrBadMagic, or ErrVersion (falling back to
// an older file); ErrFingerprint is surfaced to the caller because every
// candidate came from a different run.
var (
	ErrBadMagic    = errors.New("ckpt: bad magic (not a checkpoint file)")
	ErrVersion     = errors.New("ckpt: unsupported format version")
	ErrTruncated   = errors.New("ckpt: truncated snapshot")
	ErrChecksum    = errors.New("ckpt: checksum mismatch (corrupted snapshot)")
	ErrFingerprint = errors.New("ckpt: run fingerprint mismatch")
)

// Block is one named tensor in a snapshot: a model parameter, its
// gradient-moment pair, or an auxiliary weight copy (e.g. best-so-far).
// Exactly one of Data/Data32 is populated, selected by Dtype; the zero
// Dtype is Float64 so existing construction sites stay valid.
type Block struct {
	Name       string
	Dtype      Dtype
	Rows, Cols int
	Data       []float64 // payload when Dtype == Float64
	Data32     []float32 // payload when Dtype == Float32
}

// Len returns the number of elements in the block's payload.
func (b Block) Len() int {
	if b.Dtype == Float32 {
		return len(b.Data32)
	}
	return len(b.Data)
}

// Float64 returns the payload as float64, widening a Float32 block into a
// fresh slice; Float64 blocks return their payload without copying.
func (b Block) Float64() []float64 {
	if b.Dtype != Float32 {
		return b.Data
	}
	out := make([]float64, len(b.Data32))
	for i, v := range b.Data32 {
		out[i] = float64(v)
	}
	return out
}

// Float32 returns the payload as float32, narrowing a Float64 block into a
// fresh slice; Float32 blocks return their payload without copying.
func (b Block) Float32() []float32 {
	if b.Dtype == Float32 {
		return b.Data32
	}
	out := make([]float32, len(b.Data))
	for i, v := range b.Data {
		out[i] = float32(v)
	}
	return out
}

// Snapshot is the full resumable training state at a (epoch, batch)
// boundary. Batch < 0 means "epoch boundary" (no mid-epoch cursor).
type Snapshot struct {
	Fingerprint uint64 // run identity: model + graph + config hash

	Epoch          int // completed epochs (resume starts at this epoch)
	Batch          int // next batch index within Epoch, or -1 at a boundary
	OptStep        int // optimizer step counter (Adam bias correction)
	BestEpoch      int // epoch of best validation accuracy, -1 if none
	PatienceAnchor int // early-stopping anchor (epoch of last improvement)
	BestVal        float64

	RNG      []byte // serialized PCG state at the cursor
	RNGEpoch []byte // serialized PCG state just before this epoch's shuffle
	Aux      []byte // opaque subsystem state riding with the cursor (may be nil)

	Blocks []Block
}

// Encode serializes the snapshot to the version-2 binary format,
// including the trailing checksum.
func (s *Snapshot) Encode() []byte {
	n := len(magic) + 4 + 8 + 5*8 + 8 +
		4 + len(s.RNG) + 4 + len(s.RNGEpoch) + 4 + len(s.Aux) + 4
	for _, b := range s.Blocks {
		n += 2 + len(b.Name) + 1 + 4 + 4 + b.Dtype.elemSize()*b.Len()
	}
	n += 4 // checksum
	buf := make([]byte, 0, n)

	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint64(buf, s.Fingerprint)
	for _, v := range [...]int{s.Epoch, s.Batch, s.OptStep, s.BestEpoch, s.PatienceAnchor} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.BestVal))
	buf = appendBytes(buf, s.RNG)
	buf = appendBytes(buf, s.RNGEpoch)
	buf = appendBytes(buf, s.Aux)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Blocks)))
	for _, b := range s.Blocks {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(b.Name)))
		buf = append(buf, b.Name...)
		buf = append(buf, byte(b.Dtype))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Rows))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Cols))
		switch b.Dtype {
		case Float32:
			for _, v := range b.Data32 {
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
			}
		default:
			for _, v := range b.Data {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// Decode parses a version-1 or version-2 snapshot, verifying magic,
// version, and checksum. It does not check the fingerprint; callers compare
// Snapshot.Fingerprint themselves (Manager.Latest does).
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint32(data[len(magic):])
	if version != Version && version != versionV2 && version != versionV1 {
		return nil, fmt.Errorf("%w: got %d, want <= %d", ErrVersion, version, Version)
	}
	// Verify the trailing checksum before trusting any length field.
	if len(data) < len(magic)+4+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrChecksum
	}

	r := reader{buf: body, off: len(magic) + 4}
	s := &Snapshot{}
	s.Fingerprint = r.u64()
	s.Epoch = int(int64(r.u64()))
	s.Batch = int(int64(r.u64()))
	s.OptStep = int(int64(r.u64()))
	s.BestEpoch = int(int64(r.u64()))
	s.PatienceAnchor = int(int64(r.u64()))
	s.BestVal = math.Float64frombits(r.u64())
	s.RNG = r.bytes()
	s.RNGEpoch = r.bytes()
	if version >= Version {
		s.Aux = r.bytes()
	}
	nblocks := int(r.u32())
	if r.err == nil && nblocks >= 0 && nblocks <= (len(body)-r.off)/10 {
		s.Blocks = make([]Block, 0, nblocks)
	}
	for i := 0; i < nblocks && r.err == nil; i++ {
		var b Block
		b.Name = string(r.short())
		if version >= versionV2 {
			b.Dtype = Dtype(r.u8())
		}
		b.Rows = int(r.u32())
		b.Cols = int(r.u32())
		if r.err != nil {
			break
		}
		es := b.Dtype.elemSize()
		if es == 0 {
			r.err = fmt.Errorf("%w: block %q has unknown dtype %d", ErrTruncated, b.Name, uint8(b.Dtype))
			break
		}
		if b.Rows < 0 || b.Cols < 0 || (b.Rows > 0 && b.Cols > (len(body)-r.off)/es/b.Rows) {
			r.err = fmt.Errorf("%w: block %q claims %dx%d", ErrTruncated, b.Name, b.Rows, b.Cols)
			break
		}
		if b.Dtype == Float32 {
			b.Data32 = make([]float32, b.Rows*b.Cols)
			for j := range b.Data32 {
				b.Data32[j] = math.Float32frombits(r.u32())
			}
		} else {
			b.Data = make([]float64, b.Rows*b.Cols)
			for j := range b.Data {
				b.Data[j] = math.Float64frombits(r.u64())
			}
		}
		s.Blocks = append(s.Blocks, b)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrTruncated, len(body)-r.off)
	}
	return s, nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// reader is a bounds-checked cursor over the snapshot body; the first
// overrun latches err and every later read returns zero.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.err = fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrTruncated, n, r.off, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func (r *reader) short() []byte {
	b := r.take(2)
	if b == nil {
		return nil
	}
	return r.take(int(binary.LittleEndian.Uint16(b)))
}
