package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scalegnn/internal/fault"
	"scalegnn/internal/obs"
)

func sampleSnapshot(fp uint64) *Snapshot {
	return &Snapshot{
		Fingerprint:    fp,
		Epoch:          7,
		Batch:          -1,
		OptStep:        91,
		BestEpoch:      5,
		PatienceAnchor: 5,
		BestVal:        0.8125,
		RNG:            []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		RNGEpoch:       []byte{11, 12, 13, 14},
		Blocks: []Block{
			{Name: "param.0", Rows: 2, Cols: 3, Data: []float64{1, -2, 3.5, 0, 1e-9, -7}},
			{Name: "adam.m.0", Rows: 2, Cols: 3, Data: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}},
			{Name: "empty", Rows: 0, Cols: 4, Data: []float64{}},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleSnapshot(0xdeadbeef)
	got, err := Decode(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != want.Fingerprint || got.Epoch != want.Epoch ||
		got.Batch != want.Batch || got.OptStep != want.OptStep ||
		got.BestEpoch != want.BestEpoch || got.PatienceAnchor != want.PatienceAnchor ||
		got.BestVal != want.BestVal {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if string(got.RNG) != string(want.RNG) || string(got.RNGEpoch) != string(want.RNGEpoch) {
		t.Fatal("rng state mismatch")
	}
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("got %d blocks, want %d", len(got.Blocks), len(want.Blocks))
	}
	for i, b := range got.Blocks {
		w := want.Blocks[i]
		if b.Name != w.Name || b.Rows != w.Rows || b.Cols != w.Cols {
			t.Fatalf("block %d shape: got %+v want %+v", i, b, w)
		}
		for j := range b.Data {
			if b.Data[j] != w.Data[j] {
				t.Fatalf("block %d data[%d]: got %v want %v", i, j, b.Data[j], w.Data[j])
			}
		}
	}
}

// TestCorruptionMatrix is the satellite-mandated table: every corruption
// class must map to its typed error.
func TestCorruptionMatrix(t *testing.T) {
	good := sampleSnapshot(1).Encode()
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"empty file", func(b []byte) []byte { return nil }, ErrTruncated},
		{"truncated header", func(b []byte) []byte { return b[:10] }, ErrTruncated},
		{"truncated body", func(b []byte) []byte { return b[:len(b)/2] }, ErrChecksum},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-1] }, ErrChecksum},
		{"flipped byte", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }, ErrChecksum},
		{"flipped checksum", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, ErrChecksum},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"wrong version", func(b []byte) []byte { b[8] = 99; return b }, ErrVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), good...))
			_, err := Decode(data)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestWriteFileDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileDurable(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite must replace atomically, leaving no temp files behind.
	if err := WriteFileDurable(path, []byte("world")); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries after two writes, want 1", len(ents))
	}
}

func TestWriteFileDurableFailpointLeavesNoFinalFile(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := fault.Set("ckpt.before-rename", "error"); err != nil {
		t.Fatal(err)
	}
	err := WriteFileDurable(path, []byte("doomed"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("final path exists after aborted write (stat err %v)", err)
	}
}

func TestManagerSavePruneLatest(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	const fp = 42
	for i := 0; i < 5; i++ {
		s := sampleSnapshot(fp)
		s.Epoch = i
		if _, err := m.Save(s); err != nil {
			t.Fatalf("save epoch %d: %v", i, err)
		}
	}
	names, err := m.list()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("retained %d snapshots, want 2: %v", len(names), names)
	}
	s, path, err := m.Latest(fp)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch != 4 {
		t.Fatalf("Latest returned epoch %d, want 4", s.Epoch)
	}
	if !strings.Contains(path, "ckpt-0000000004") {
		t.Fatalf("unexpected latest path %s", path)
	}
}

func TestLatestEmptyDirIsFreshStart(t *testing.T) {
	m, err := NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s, path, err := m.Latest(1)
	if s != nil || path != "" || err != nil {
		t.Fatalf("empty dir: got (%v, %q, %v), want (nil, \"\", nil)", s, path, err)
	}
}

// TestLatestFallsBackPastCorruption: the newest file is corrupted in
// every way the matrix covers; Latest must land on the older good one.
func TestLatestFallsBackPastCorruption(t *testing.T) {
	const fp = 7
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/3] }},
		{"flipped byte", func(b []byte) []byte { b[len(b)/2] ^= 1; return b }},
		{"wrong version", func(b []byte) []byte { b[8] = 99; return b }},
		{"garbage", func(b []byte) []byte { return []byte("not a checkpoint") }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := NewManager(t.TempDir(), 3)
			if err != nil {
				t.Fatal(err)
			}
			good := sampleSnapshot(fp)
			good.Epoch = 1
			if _, err := m.Save(good); err != nil {
				t.Fatal(err)
			}
			bad := sampleSnapshot(fp)
			bad.Epoch = 2
			badPath, err := m.Save(bad)
			if err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(badPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(badPath, tc.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			s, _, err := m.Latest(fp)
			if err != nil {
				t.Fatalf("fallback failed: %v", err)
			}
			if s.Epoch != 1 {
				t.Fatalf("resumed epoch %d, want fallback to 1", s.Epoch)
			}
		})
	}
}

// A snapshot from a different run must not be resumed, and must not be
// silently ignored either.
func TestLatestFingerprintMismatch(t *testing.T) {
	m, err := NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save(sampleSnapshot(111)); err != nil {
		t.Fatal(err)
	}
	_, _, err = m.Latest(222)
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("got %v, want ErrFingerprint", err)
	}
}

// Torn temp files from a crashed write must be invisible to resume.
func TestLatestIgnoresTempFiles(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := sampleSnapshot(9)
	if _, err := m.Save(good); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "ckpt-0000000099-999999.bin.12345.tmp")
	if err := os.WriteFile(torn, []byte("SGNNCKPT partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, err := m.Latest(9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch != good.Epoch {
		t.Fatalf("resumed epoch %d, want %d", s.Epoch, good.Epoch)
	}
}

func TestFingerprintSeparatesFields(t *testing.T) {
	a := NewFingerprint().String("ab").String("c").Sum()
	b := NewFingerprint().String("a").String("bc").Sum()
	if a == b {
		t.Fatal("fingerprint does not separate adjacent strings")
	}
	if NewFingerprint().U64(1).Sum() == NewFingerprint().U64(2).Sum() {
		t.Fatal("fingerprint ignores u64 input")
	}
}

func TestEnableMetricsCounts(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	t.Cleanup(func() {
		bytesWritten.Bind(nil)
		snapshotsSaved.Bind(nil)
		fallbacks.Bind(nil)
		saveSeconds.Store(nil)
	})
	m, err := NewManager(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save(sampleSnapshot(3)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["ckpt.snapshots_saved"] != 1 {
		t.Fatalf("snapshots_saved = %v, want 1", snap["ckpt.snapshots_saved"])
	}
	if snap["ckpt.bytes_written"] <= 0 {
		t.Fatalf("bytes_written = %v, want > 0", snap["ckpt.bytes_written"])
	}
}
