package ckpt

import (
	"sync/atomic"

	"scalegnn/internal/obs"
)

// Package metrics, disabled (one atomic load per site) until a session
// binds them with EnableMetrics — the same convention as internal/train.
var (
	bytesWritten   obs.CounterRef
	snapshotsSaved obs.CounterRef
	fallbacks      obs.CounterRef
	saveSeconds    atomic.Pointer[obs.Histogram]
)

// EnableMetrics binds the checkpoint metrics to reg:
//
//	ckpt.bytes_written    total snapshot bytes durably written
//	ckpt.snapshots_saved  snapshots committed (rename completed)
//	ckpt.fallbacks        unusable snapshots skipped during resume
//	ckpt.save_seconds     durable-write latency histogram
func EnableMetrics(reg *obs.Registry) {
	bytesWritten.Bind(reg.Counter("ckpt.bytes_written"))
	snapshotsSaved.Bind(reg.Counter("ckpt.snapshots_saved"))
	fallbacks.Bind(reg.Counter("ckpt.fallbacks"))
	saveSeconds.Store(reg.Histogram("ckpt.save_seconds",
		[]float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10}))
}

// Fingerprint hashes a run identity (model name, graph shape, config
// fields) with FNV-1a so mismatched resumes are rejected. Callers feed
// it the values that must match for a snapshot to be resumable.
type Fingerprint struct{ h uint64 }

// NewFingerprint returns an initialized FNV-1a accumulator.
func NewFingerprint() *Fingerprint { return &Fingerprint{h: 14695981039346656037} }

func (f *Fingerprint) mix(b byte) { f.h = (f.h ^ uint64(b)) * 1099511628211 }

// String folds a string into the fingerprint.
func (f *Fingerprint) String(s string) *Fingerprint {
	for i := 0; i < len(s); i++ {
		f.mix(s[i])
	}
	f.mix(0xff) // separator: String("ab")+String("c") != String("a")+String("bc")
	return f
}

// U64 folds a 64-bit value (int sizes, float bits, seeds) in.
func (f *Fingerprint) U64(v uint64) *Fingerprint {
	for i := 0; i < 8; i++ {
		f.mix(byte(v >> (8 * i)))
	}
	return f
}

// Sum returns the accumulated fingerprint.
func (f *Fingerprint) Sum() uint64 { return f.h }
