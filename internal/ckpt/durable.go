package ckpt

import (
	"fmt"
	"os"
	"path/filepath"

	"scalegnn/internal/fault"
)

// WriteFileDurable atomically replaces path with data, surviving a crash
// at any instant: the bytes are written to a temp file in the same
// directory, fsync'd, renamed over the final path, and the directory is
// fsync'd so the rename itself is durable. A crash before the rename
// leaves only a *.tmp file (ignored by Manager.Latest); a crash after it
// leaves the complete new file. The final path is never open for write.
//
// Failpoints: ckpt.before-tmp-write, ckpt.after-tmp-write,
// ckpt.before-rename, ckpt.after-rename.
func WriteFileDurable(path string, data []byte) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("ckpt: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			//lint:ignore unchecked-error best-effort cleanup on an already-failed write
			tmp.Close()
			//lint:ignore unchecked-error best-effort cleanup on an already-failed write
			os.Remove(tmpName)
		}
	}()
	if err = fault.Inject("ckpt.before-tmp-write"); err != nil {
		return err
	}
	if _, err = tmp.Write(data); err != nil {
		return fmt.Errorf("ckpt: write temp: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: fsync temp: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close temp: %w", err)
	}
	if err = fault.Inject("ckpt.after-tmp-write"); err != nil {
		return err
	}
	if err = fault.Inject("ckpt.before-rename"); err != nil {
		return err
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	if err = fault.Inject("ckpt.after-rename"); err != nil {
		return err
	}
	if err = syncDir(dir); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: open dir: %w", err)
	}
	//lint:ignore unchecked-error directory handle is read-only; Close cannot lose data
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ckpt: fsync dir: %w", err)
	}
	return nil
}
