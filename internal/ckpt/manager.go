package ckpt

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Manager owns a checkpoint directory: it names snapshots so lexical
// order equals recency, retains only the newest KeepLast files, and on
// resume walks backwards past torn or corrupt snapshots to the newest
// loadable one.
type Manager struct {
	dir  string
	keep int
}

// NewManager creates (if needed) the checkpoint directory and returns a
// manager retaining the keep most recent snapshots (keep <= 0 means 2:
// the latest plus one fallback).
func NewManager(dir string, keep int) (*Manager, error) {
	if dir == "" {
		return nil, errors.New("ckpt: empty checkpoint dir")
	}
	if keep <= 0 {
		keep = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: mkdir: %w", err)
	}
	return &Manager{dir: dir, keep: keep}, nil
}

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// fileName encodes the cursor so that lexical order is recency order.
// A boundary snapshot (batch -1, "about to start epoch E") precedes every
// mid-epoch snapshot of epoch E, so batch is stored shifted by one:
// boundary → 000000, mid-epoch batch b → b+1.
func fileName(epoch, batch int) string {
	return fmt.Sprintf("ckpt-%010d-%06d.bin", epoch, batch+1)
}

// Save durably writes the snapshot and prunes old files beyond KeepLast.
// Prune errors are reported but the snapshot itself is already safe.
func (m *Manager) Save(s *Snapshot) (string, error) {
	start := time.Now()
	data := s.Encode()
	path := filepath.Join(m.dir, fileName(s.Epoch, s.Batch))
	if err := WriteFileDurable(path, data); err != nil {
		return "", err
	}
	bytesWritten.Add(int64(len(data)))
	snapshotsSaved.Add(1)
	if h := saveSeconds.Load(); h != nil {
		h.Observe(time.Since(start).Seconds())
	}
	if err := m.prune(); err != nil {
		return path, fmt.Errorf("ckpt: prune after save: %w", err)
	}
	return path, nil
}

// list returns checkpoint basenames in the managed dir, oldest first.
// Temp files from interrupted writes are ignored (and thus also never
// pruned out from under a concurrent WriteFileDurable; they are tiny and
// rare, and the crash test asserts they are harmless).
func (m *Manager) list() ([]string, error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: read dir: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".bin") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *Manager) prune() error {
	names, err := m.list()
	if err != nil {
		return err
	}
	for len(names) > m.keep {
		if err := os.Remove(filepath.Join(m.dir, names[0])); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		names = names[1:]
	}
	return nil
}

// Latest returns the newest loadable snapshot whose fingerprint matches,
// walking backwards past files that fail to decode (torn writes cannot
// produce these — rename is atomic — but operators can, and the corrupt
// file is left in place for inspection). It returns (nil, "", nil) when
// the directory holds no checkpoints at all: a fresh start, not an error.
// If snapshots exist but every loadable one has a different fingerprint,
// it returns ErrFingerprint — resuming someone else's run must not
// silently start over.
func (m *Manager) Latest(fingerprint uint64) (*Snapshot, string, error) {
	names, err := m.list()
	if err != nil {
		return nil, "", err
	}
	if len(names) == 0 {
		return nil, "", nil
	}
	var lastErr error
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(m.dir, names[i])
		data, err := os.ReadFile(path)
		if err != nil {
			lastErr = err
			fallbacks.Add(1)
			continue
		}
		s, err := Decode(data)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", names[i], err)
			fallbacks.Add(1)
			continue
		}
		if s.Fingerprint != fingerprint {
			lastErr = fmt.Errorf("%s: %w: snapshot %016x, run %016x",
				names[i], ErrFingerprint, s.Fingerprint, fingerprint)
			fallbacks.Add(1)
			continue
		}
		return s, path, nil
	}
	return nil, "", fmt.Errorf("ckpt: no usable snapshot in %s (newest failure: %w)", m.dir, lastErr)
}
