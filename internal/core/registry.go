// Package core is the library's organizing layer — the tutorial's Figure 1
// taxonomy turned into an API. It provides:
//
//   - Registry: a machine-checkable inventory of every taxonomy leaf from
//     Figure 1 mapped to the package and symbol implementing it (experiment
//     F1 asserts completeness).
//   - Pipeline: composable scalable-GNN construction — a chain of dataset
//     Transforms (the §3.3 "graph editing" stages: sparsify, coarsen,
//     augment) feeding any model Trainer (which internally may use the
//     §3.2 "analytics" stages: PPR, spectral filters, similarity), with
//     predictions lifted back to the original graph for honest evaluation.
package core

import "fmt"

// Category mirrors the two technique families of the taxonomy plus the
// classic-methods branch.
type Category string

// Categories of Figure 1.
const (
	CatClassic   Category = "classic"
	CatAnalytics Category = "analytics" // graph analytics & querying (§3.2)
	CatEditing   Category = "editing"   // graph editing (§3.3)
)

// Technique is one leaf of the Figure 1 taxonomy.
type Technique struct {
	// Section is the tutorial section covering the leaf (e.g. "3.2.1").
	Section string
	// Branch is the mid-level grouping ("Spectral Embeddings", …).
	Branch string
	// Leaf is the taxonomy leaf name as printed in Figure 1.
	Leaf string
	// Category is the top-level family.
	Category Category
	// Package is the implementing package path within this module.
	Package string
	// Symbols are the main entry points implementing the leaf.
	Symbols []string
	// Representative names the surveyed system(s) the implementation
	// follows.
	Representative string
}

// Registry returns the full taxonomy inventory. Order follows Figure 1
// left-to-right, top-to-bottom.
func Registry() []Technique {
	return []Technique{
		// Classic scalable GNN approaches (§3.1.2).
		{Section: "3.1.2", Branch: "Classic Method", Leaf: "Graph Partition", Category: CatClassic,
			Package: "internal/partition", Symbols: []string{"LDG", "Fennel", "Multilevel"}, Representative: "METIS/Fennel-style"},
		{Section: "3.1.2", Branch: "Classic Method", Leaf: "Graph Sampling", Category: CatClassic,
			Package: "internal/sampling", Symbols: []string{"NeighborSampler"}, Representative: "GraphSAGE"},
		{Section: "3.1.2", Branch: "Classic Method", Leaf: "Decoupled Propagation", Category: CatClassic,
			Package: "internal/models", Symbols: []string{"SGC", "APPNP", "SIGN"}, Representative: "SGC/APPNP/SIGN"},

		// Graph analytics & querying (§3.2).
		{Section: "3.2.1", Branch: "Spectral Embeddings", Leaf: "Combined Embeddings", Category: CatAnalytics,
			Package: "internal/spectral", Symbols: []string{"MultiFilter"}, Representative: "LD2"},
		{Section: "3.2.1", Branch: "Spectral Embeddings", Leaf: "Adaptive Basis", Category: CatAnalytics,
			Package: "internal/spectral", Symbols: []string{"BasisEmbeddings", "ChebyshevFit"}, Representative: "UniFilter/AdaptKry"},
		{Section: "3.2.2", Branch: "Node-pair Similarity", Leaf: "Topology Similarity", Category: CatAnalytics,
			Package: "internal/simrank", Symbols: []string{"AllPairs", "Index.TopK", "rewire.Rewire"}, Representative: "SIMGA/DHGR"},
		{Section: "3.2.2", Branch: "Node-pair Similarity", Leaf: "Hub Labeling", Category: CatAnalytics,
			Package: "internal/hublabel", Symbols: []string{"Build", "Index.Query", "models.GraphTransformer"}, Representative: "CFGNN/DHIL-GT"},
		{Section: "3.2.3", Branch: "Graph Algebras", Leaf: "Matrix Decomposition", Category: CatAnalytics,
			Package: "internal/implicit", Symbols: []string{"Solver.SolveEig"}, Representative: "EIGNN"},
		{Section: "3.2.3", Branch: "Graph Algebras", Leaf: "Approximate Iteration", Category: CatAnalytics,
			Package: "internal/implicit", Symbols: []string{"MultiscaleSolve"}, Representative: "MGNNI"},
		{Section: "3.2.3", Branch: "Graph Algebras", Leaf: "Graph Simplification", Category: CatAnalytics,
			Package: "internal/coarsen", Symbols: []string{"AugmentWithSupernodes"}, Representative: "SEIGNN"},

		// Graph editing (§3.3).
		{Section: "3.3.1", Branch: "Graph Sparsification", Leaf: "Node-level", Category: CatEditing,
			Package: "internal/sparsify", Symbols: []string{"PruneOperator", "EffectiveResistance", "ppr.DiffusionEmbedding"}, Representative: "SCARA/Unifews"},
		{Section: "3.3.1", Branch: "Graph Sparsification", Leaf: "Layer-level", Category: CatEditing,
			Package: "internal/sparsify", Symbols: []string{"TopKPerNode"}, Representative: "NIGCN/ATP"},
		{Section: "3.3.1", Branch: "Graph Sparsification", Leaf: "Subgraph-level", Category: CatEditing,
			Package: "internal/models", Symbols: []string{"GAMLP", "NAIPredict"}, Representative: "GAMLP/NAI"},
		{Section: "3.3.2", Branch: "Graph Sampling", Leaf: "Graph Expressiveness", Category: CatEditing,
			Package: "internal/sampling", Symbols: []string{"FastGCNSampler", "LadiesSampler"}, Representative: "FastGCN/LADIES/ADGNN"},
		{Section: "3.3.2", Branch: "Graph Sampling", Leaf: "Graph Variance", Category: CatEditing,
			Package: "internal/sampling", Symbols: []string{"LaborSampler", "MeasureVariance"}, Representative: "LABOR/HDSGNN/LMC"},
		{Section: "3.3.2", Branch: "Graph Sampling", Leaf: "Device Acceleration", Category: CatEditing,
			Package: "internal/sampling", Symbols: []string{"RandomWalkSampler", "EdgeSampler"}, Representative: "GIDS/NeutronOrch (simulated: parallel CPU samplers)"},
		{Section: "3.3.3", Branch: "Subgraph Extraction", Leaf: "Subgraph Generation", Category: CatEditing,
			Package: "internal/subgraph", Symbols: []string{"EgoNet"}, Representative: "G3/TIGER"},
		{Section: "3.3.3", Branch: "Subgraph Extraction", Leaf: "Subgraph Storage", Category: CatEditing,
			Package: "internal/subgraph", Symbols: []string{"WalkStore", "dynamic.WalkMaintainer", "linkpred.WalkFeatureModel"}, Representative: "SUREL/GENTI"},
		{Section: "3.3.4", Branch: "Graph Coarsening", Leaf: "Structure-based", Category: CatEditing,
			Package: "internal/coarsen", Symbols: []string{"Coarsen(HeavyEdge)"}, Representative: "ConvMatch"},
		{Section: "3.3.4", Branch: "Graph Coarsening", Leaf: "Spectral-based", Category: CatEditing,
			Package: "internal/coarsen", Symbols: []string{"condense.Condense", "Coarsen(NormalizedHeavyEdge)", "EigenvalueError"}, Representative: "GDEM/GC-SNTK"},
	}
}

// Verify checks registry integrity: every leaf has a section, package and
// at least one symbol, and the three categories are all populated. It is
// the F1 "taxonomy completeness" experiment.
func Verify() error {
	reg := Registry()
	if len(reg) == 0 {
		return fmt.Errorf("core: empty registry")
	}
	seen := map[Category]int{}
	leaves := map[string]bool{}
	for i, t := range reg {
		if t.Section == "" || t.Package == "" || t.Leaf == "" {
			return fmt.Errorf("core: registry entry %d incomplete: %+v", i, t)
		}
		if len(t.Symbols) == 0 {
			return fmt.Errorf("core: leaf %q has no implementing symbols", t.Leaf)
		}
		key := t.Branch + "/" + t.Leaf
		if leaves[key] {
			return fmt.Errorf("core: duplicate leaf %q", key)
		}
		leaves[key] = true
		seen[t.Category]++
	}
	for _, c := range []Category{CatClassic, CatAnalytics, CatEditing} {
		if seen[c] == 0 {
			return fmt.Errorf("core: category %q has no implementations", c)
		}
	}
	return nil
}
