package core

import (
	"testing"

	"scalegnn/internal/coarsen"
	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
	"scalegnn/internal/tensor"
)

func TestRegistryVerify(t *testing.T) {
	if err := Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryCoversAllSections(t *testing.T) {
	want := map[string]bool{
		"3.1.2": false, "3.2.1": false, "3.2.2": false, "3.2.3": false,
		"3.3.1": false, "3.3.2": false, "3.3.3": false, "3.3.4": false,
	}
	for _, tech := range Registry() {
		if _, ok := want[tech.Section]; ok {
			want[tech.Section] = true
		}
	}
	for sec, covered := range want {
		if !covered {
			t.Errorf("tutorial section %s has no registry entry", sec)
		}
	}
}

func task(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 500, Classes: 3, AvgDegree: 12, Homophily: 0.85,
		FeatureDim: 16, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func quickCfg() models.TrainConfig {
	cfg := models.DefaultTrainConfig()
	cfg.Epochs = 50
	cfg.Patience = 15
	return cfg
}

func TestPipelinePlainModel(t *testing.T) {
	ds := task(t)
	m, err := models.NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{Model: m}
	rep, err := p.Run(ds, quickCfg(), tensor.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrigTestAcc < 0.7 {
		t.Errorf("plain pipeline test acc %.3f", rep.OrigTestAcc)
	}
	if rep.EdgesBefore != rep.EdgesAfter || rep.NodesBefore != rep.NodesAfter {
		t.Error("no-transform pipeline changed the graph")
	}
	// With no transforms, the original-graph eval must equal the fit eval.
	if rep.OrigTestAcc != rep.Fit.TestAcc {
		t.Errorf("identity pipeline: orig %.4f != fit %.4f", rep.OrigTestAcc, rep.Fit.TestAcc)
	}
}

func TestPipelineSparsify(t *testing.T) {
	ds := task(t)
	m, err := models.NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{
		Transforms: []Transform{&SparsifyTransform{Keep: 0.5}},
		Model:      m,
	}
	rep, err := p.Run(ds, quickCfg(), tensor.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.EdgesAfter >= rep.EdgesBefore {
		t.Error("sparsify did not reduce edges")
	}
	if rep.OrigTestAcc < 0.6 {
		t.Errorf("sparsified pipeline collapsed: %.3f", rep.OrigTestAcc)
	}
	if len(rep.Stages) != 1 || rep.Stages[0] != "sparsify-p0.50" {
		t.Errorf("stages = %v", rep.Stages)
	}
}

func TestPipelineCoarsen(t *testing.T) {
	ds := task(t)
	m, err := models.NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{
		Transforms: []Transform{&CoarsenTransform{Ratio: 4, Strategy: coarsen.HeavyEdge}},
		Model:      m,
	}
	rep, err := p.Run(ds, quickCfg(), tensor.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodesAfter >= rep.NodesBefore/2 {
		t.Errorf("coarsening left %d of %d nodes", rep.NodesAfter, rep.NodesBefore)
	}
	// Coarse training on a homophilous SBM should still substantially beat
	// chance (1/3) on the original test set.
	if rep.OrigTestAcc < 0.55 {
		t.Errorf("coarse pipeline test acc %.3f", rep.OrigTestAcc)
	}
}

func TestPipelineChainedTransforms(t *testing.T) {
	ds := task(t)
	m, err := models.NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{
		Transforms: []Transform{
			&SparsifyTransform{TopK: 8},
			&CoarsenTransform{Ratio: 2, Strategy: coarsen.NormalizedHeavyEdge},
		},
		Model: m,
	}
	rep, err := p.Run(ds, quickCfg(), tensor.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 2 {
		t.Errorf("stages = %v", rep.Stages)
	}
	if rep.OrigTestAcc < 0.5 {
		t.Errorf("chained pipeline acc %.3f", rep.OrigTestAcc)
	}
}

func TestPipelineValidation(t *testing.T) {
	ds := task(t)
	p := &Pipeline{}
	if _, err := p.Run(ds, quickCfg(), tensor.NewRand(1)); err == nil {
		t.Error("pipeline without model should error")
	}
	m, _ := models.NewSGC(2)
	bad := &Pipeline{
		Transforms: []Transform{&CoarsenTransform{Ratio: 0.5, Strategy: coarsen.HeavyEdge}},
		Model:      m,
	}
	if _, err := bad.Run(ds, quickCfg(), tensor.NewRand(1)); err == nil {
		t.Error("ratio < 1 should error")
	}
}

func TestCoarsenTransformNoTestLeakage(t *testing.T) {
	// All coarse training labels must be derivable from original TRAIN
	// nodes only: flipping every non-train label must not change the
	// coarse dataset's supervision.
	ds := task(t)
	ds2 := *ds
	ds2.Labels = append([]int(nil), ds.Labels...)
	isTrain := make([]bool, ds.G.N)
	for _, v := range ds.TrainIdx {
		isTrain[v] = true
	}
	for i := range ds2.Labels {
		if !isTrain[i] {
			ds2.Labels[i] = (ds2.Labels[i] + 1) % ds.NumClasses
		}
	}
	tr := &CoarsenTransform{Ratio: 3, Strategy: coarsen.HeavyEdge}
	a, _, err := tr.Apply(ds, tensor.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := tr.Apply(&ds2, tensor.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Labels) != len(b.Labels) {
		t.Fatal("nondeterministic coarsening")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("coarse label %d depends on non-train labels", i)
		}
	}
}

func TestPipelineRewireOnHeterophilousGraph(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 500, Classes: 3, AvgDegree: 10, Homophily: 0.1,
		FeatureDim: 16, NoiseStd: 0.5, TrainFrac: 0.5, ValFrac: 0.2, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := models.NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	plainRep, err := (&Pipeline{Model: plain}).Run(ds, quickCfg(), tensor.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	rewired, err := models.NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{
		Transforms: []Transform{&RewireTransform{AddK: 4, PruneBelow: 0.2}},
		Model:      rewired,
	}
	rep, err := p.Run(ds, quickCfg(), tensor.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	// DHGR claim: rewiring lifts a low-pass model on a heterophilous graph.
	if rep.OrigTestAcc <= plainRep.OrigTestAcc {
		t.Errorf("rewired SGC %.3f not above plain %.3f", rep.OrigTestAcc, plainRep.OrigTestAcc)
	}
}

func TestPipelineCondense(t *testing.T) {
	ds := task(t)
	m, err := models.NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{
		Transforms: []Transform{&CondenseTransform{Ratio: 4}},
		Model:      m,
	}
	rep, err := p.Run(ds, quickCfg(), tensor.NewRand(31))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NodesAfter >= ds.G.N/3 {
		t.Errorf("condensation left %d of %d nodes", rep.NodesAfter, ds.G.N)
	}
	if rep.OrigTestAcc < 0.6 {
		t.Errorf("condensed pipeline acc %.3f", rep.OrigTestAcc)
	}
	// Ratio < 1 must error.
	bad := &Pipeline{Transforms: []Transform{&CondenseTransform{Ratio: 0.5}}, Model: m}
	if _, err := bad.Run(ds, quickCfg(), tensor.NewRand(1)); err == nil {
		t.Error("ratio < 1 should error")
	}
}
