package core

import (
	"fmt"
	"math/rand/v2"
	"time"

	"scalegnn/internal/coarsen"
	"scalegnn/internal/condense"
	"scalegnn/internal/dataset"
	"scalegnn/internal/metrics"
	"scalegnn/internal/models"
	"scalegnn/internal/obs"
	"scalegnn/internal/rewire"
	"scalegnn/internal/sparsify"
)

// Transform is one graph-editing stage of a scalable-GNN pipeline: it maps
// a dataset to a (usually smaller) dataset, optionally with a prediction
// lift back to the original node set.
type Transform interface {
	// Name identifies the stage for reports.
	Name() string
	// Apply edits the dataset. The returned lift maps predictions on the
	// transformed node set back to the input node set; a nil lift means
	// node identities are unchanged.
	Apply(ds *dataset.Dataset, rng *rand.Rand) (*dataset.Dataset, func(pred []int) []int, error)
}

// Pipeline composes editing transforms with a model trainer. Run applies
// the transforms in order, fits the model on the final dataset, and
// evaluates the lifted predictions on the ORIGINAL dataset's splits — so a
// pipeline that destroys information shows up honestly in OrigTestAcc.
type Pipeline struct {
	Transforms []Transform
	Model      models.Trainer
}

// PipelineReport extends the model report with original-graph evaluation.
type PipelineReport struct {
	Fit *models.Report
	// Stages lists the applied transform names in order.
	Stages []string
	// TransformTime is the total time spent in transforms.
	TransformTime time.Duration
	// OrigValAcc / OrigTestAcc evaluate lifted predictions on the original
	// dataset splits.
	OrigValAcc  float64
	OrigTestAcc float64
	// EdgesBefore/EdgesAfter track the graph-size reduction.
	EdgesBefore, EdgesAfter int
	NodesBefore, NodesAfter int
}

// Run executes the pipeline.
func (p *Pipeline) Run(orig *dataset.Dataset, cfg models.TrainConfig, rng *rand.Rand) (*PipelineReport, error) {
	if p.Model == nil {
		return nil, fmt.Errorf("core: pipeline has no model")
	}
	rep := &PipelineReport{
		EdgesBefore: orig.G.NumEdges(),
		NodesBefore: orig.G.N,
	}
	runSp := obs.Start("pipeline.run")
	defer runSp.End()
	ds := orig
	var lifts []func([]int) []int
	tStart := time.Now()
	for _, tr := range p.Transforms {
		// Honor the training context between transform stages too, so a
		// deadline set on cfg.Ctx bounds the whole pipeline, not just the
		// epochs (the model's Fit checks it per batch via internal/train).
		if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
			return nil, fmt.Errorf("core: cancelled before transform %s: %w", tr.Name(), cfg.Ctx.Err())
		}
		trSp := runSp.Child("pipeline.transform")
		if trSp.Active() {
			// Transform names are fmt-built; only pay for them when traced.
			trSp.SetLabel(tr.Name())
		}
		next, lift, err := tr.Apply(ds, rng)
		trSp.End()
		if err != nil {
			return nil, fmt.Errorf("core: transform %s: %w", tr.Name(), err)
		}
		rep.Stages = append(rep.Stages, tr.Name())
		ds = next
		lifts = append(lifts, lift)
	}
	rep.TransformTime = time.Since(tStart)
	rep.EdgesAfter = ds.G.NumEdges()
	rep.NodesAfter = ds.G.N

	fitSp := runSp.Child("pipeline.fit")
	if fitSp.Active() {
		fitSp.SetLabel(p.Model.Name())
	}
	fit, err := p.Model.Fit(ds, cfg)
	fitSp.End()
	if err != nil {
		return nil, fmt.Errorf("core: fit %s: %w", p.Model.Name(), err)
	}
	rep.Fit = fit

	predSp := runSp.Child("pipeline.predict")
	pred, err := p.Model.Predict(ds)
	predSp.End()
	if err != nil {
		return nil, fmt.Errorf("core: predict: %w", err)
	}
	// Lift back through the transform chain (innermost last).
	for i := len(lifts) - 1; i >= 0; i-- {
		if lifts[i] != nil {
			pred = lifts[i](pred)
		}
	}
	if len(pred) != orig.G.N {
		return nil, fmt.Errorf("core: lifted predictions cover %d of %d nodes", len(pred), orig.G.N)
	}
	rep.OrigValAcc = accuracyOn(pred, orig, orig.ValIdx)
	rep.OrigTestAcc = accuracyOn(pred, orig, orig.TestIdx)
	return rep, nil
}

func accuracyOn(pred []int, ds *dataset.Dataset, idx []int) float64 {
	sub := make([]int, len(idx))
	for i, v := range idx {
		sub[i] = pred[v]
	}
	return metrics.Accuracy(sub, dataset.LabelsAt(ds.Labels, idx))
}

// SparsifyTransform drops edges with the configured scheme, keeping the
// node set (identity lift).
type SparsifyTransform struct {
	// Keep is the edge keep fraction for the uniform scheme; used when
	// TopK == 0.
	Keep float64
	// TopK, when > 0, selects rank-based per-node pruning instead.
	TopK int
}

// Name implements Transform.
func (t *SparsifyTransform) Name() string {
	if t.TopK > 0 {
		return fmt.Sprintf("sparsify-top%d", t.TopK)
	}
	return fmt.Sprintf("sparsify-p%.2f", t.Keep)
}

// Apply implements Transform.
func (t *SparsifyTransform) Apply(ds *dataset.Dataset, rng *rand.Rand) (*dataset.Dataset, func([]int) []int, error) {
	var g2 = ds.G
	var err error
	if t.TopK > 0 {
		g2, err = sparsify.TopKPerNode(ds.G, t.TopK)
	} else {
		g2, err = sparsify.Uniform(ds.G, t.Keep, rng)
	}
	if err != nil {
		return nil, nil, err
	}
	out := *ds
	out.G = g2
	return &out, nil, nil
}

// CoarsenTransform contracts the graph to roughly 1/Ratio of its nodes,
// projects features by mean pooling and labels by train-only majority vote,
// and lifts predictions by broadcast. Splits on the coarse dataset: every
// coarse node with a (train-derived) label is a training node; val/test
// evaluation happens on the original graph via the lift.
type CoarsenTransform struct {
	Ratio    float64 // target n_fine / n_coarse (>= 1)
	Strategy coarsen.Strategy
}

// Name implements Transform.
func (t *CoarsenTransform) Name() string {
	return fmt.Sprintf("coarsen-%.0fx-%s", t.Ratio, t.Strategy)
}

// Apply implements Transform.
func (t *CoarsenTransform) Apply(ds *dataset.Dataset, rng *rand.Rand) (*dataset.Dataset, func([]int) []int, error) {
	if t.Ratio < 1 {
		return nil, nil, fmt.Errorf("core: coarsen ratio %v < 1", t.Ratio)
	}
	target := int(float64(ds.G.N) / t.Ratio)
	if target < 1 {
		target = 1
	}
	res, err := coarsen.Coarsen(ds.G, target, t.Strategy, rng)
	if err != nil {
		return nil, nil, err
	}
	// Train-only labels prevent test leakage into the coarse supervision.
	trainLabels := make([]int, ds.G.N)
	for i := range trainLabels {
		trainLabels[i] = -1
	}
	for _, v := range ds.TrainIdx {
		trainLabels[v] = ds.Labels[v]
	}
	coarseLabels := coarsen.ProjectLabels(trainLabels, res.Assign, res.Coarse.N, ds.NumClasses)

	var trainIdx []int
	for c, y := range coarseLabels {
		if y >= 0 {
			trainIdx = append(trainIdx, c)
		} else {
			coarseLabels[c] = 0 // placeholder; never trained or evaluated on
		}
	}
	out := &dataset.Dataset{
		G:          res.Coarse,
		X:          coarsen.ProjectFeatures(ds.X, res.Assign, res.Coarse.N),
		Labels:     coarseLabels,
		NumClasses: ds.NumClasses,
		TrainIdx:   trainIdx,
		// Coarse val: reuse train indices (model-internal early stopping
		// signal only; honest eval happens on the original graph).
		ValIdx:  trainIdx,
		TestIdx: trainIdx,
	}
	lift := func(pred []int) []int { return coarsen.LiftLabels(pred, res.Assign) }
	return out, lift, nil
}

// RewireTransform adds edges between the most attribute-similar 2-hop
// pairs and optionally prunes dissimilar edges (DHGR, §3.2.2) — raising the
// effective homophily so downstream low-pass models recover. Node set is
// unchanged (identity lift).
type RewireTransform struct {
	AddK       int
	PruneBelow float64
}

// Name implements Transform.
func (t *RewireTransform) Name() string {
	return fmt.Sprintf("rewire-add%d-prune%.2f", t.AddK, t.PruneBelow)
}

// Apply implements Transform.
func (t *RewireTransform) Apply(ds *dataset.Dataset, rng *rand.Rand) (*dataset.Dataset, func([]int) []int, error) {
	sim := rewire.NewCosineSimilarity(ds.G, ds.X)
	res, err := rewire.Rewire(ds.G, sim, rewire.Config{AddK: t.AddK, PruneBelow: t.PruneBelow})
	if err != nil {
		return nil, nil, err
	}
	out := *ds
	out.G = res.G
	return &out, nil, nil
}

// CondenseTransform synthesizes a spectrally matched condensed training
// graph (condense package, GDEM-style §3.3.4): bottom-k eigenbasis →
// spectral clustering → aggregated adjacency, with the same train-only
// label projection and broadcast lift as CoarsenTransform.
type CondenseTransform struct {
	Ratio  float64 // target n_fine / n_condensed (>= 1)
	EigenK int     // eigenvectors to match (0 = default)
}

// Name implements Transform.
func (t *CondenseTransform) Name() string {
	return fmt.Sprintf("condense-%.0fx", t.Ratio)
}

// Apply implements Transform.
func (t *CondenseTransform) Apply(ds *dataset.Dataset, rng *rand.Rand) (*dataset.Dataset, func([]int) []int, error) {
	if t.Ratio < 1 {
		return nil, nil, fmt.Errorf("core: condense ratio %v < 1", t.Ratio)
	}
	target := int(float64(ds.G.N) / t.Ratio)
	if target < 2 {
		target = 2
	}
	res, err := condense.Condense(ds.G, condense.Config{TargetNodes: target, EigenK: t.EigenK}, rng)
	if err != nil {
		return nil, nil, err
	}
	trainLabels := make([]int, ds.G.N)
	for i := range trainLabels {
		trainLabels[i] = -1
	}
	for _, v := range ds.TrainIdx {
		trainLabels[v] = ds.Labels[v]
	}
	condLabels := coarsen.ProjectLabels(trainLabels, res.Assign, res.Condensed.N, ds.NumClasses)
	var trainIdx []int
	for c, y := range condLabels {
		if y >= 0 {
			trainIdx = append(trainIdx, c)
		} else {
			condLabels[c] = 0
		}
	}
	out := &dataset.Dataset{
		G:          res.Condensed,
		X:          coarsen.ProjectFeatures(ds.X, res.Assign, res.Condensed.N),
		Labels:     condLabels,
		NumClasses: ds.NumClasses,
		TrainIdx:   trainIdx,
		ValIdx:     trainIdx,
		TestIdx:    trainIdx,
	}
	lift := func(pred []int) []int { return coarsen.LiftLabels(pred, res.Assign) }
	return out, lift, nil
}
