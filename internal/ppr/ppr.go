// Package ppr implements Personalized PageRank computation, the graph
// analytics workhorse behind decoupled scalable GNNs (APPNP, SCARA, and the
// PPR-propagated models of tutorial §3.1.2/§3.3.1).
//
// Three estimators with different cost/accuracy profiles are provided:
//
//   - Power iteration: exact up to iteration truncation, O(m) per round.
//   - Forward push (Andersen, Chung, Lang): local, ε-approximate, touches
//     only the nodes whose residual exceeds the threshold — sublinear for
//     small ε·degree products, the reason decoupled GNNs scale.
//   - Monte Carlo random walks: unbiased, O(w) walks, converging as O(1/√w).
//
// All estimators use the random-walk convention: pi = α Σ_k (1-α)^k (D^{-1}A)^k e_s,
// i.e. the stationary distribution of an α-restart walk from the source.
package ppr

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync/atomic"

	"scalegnn/internal/graph"
	"scalegnn/internal/obs"
	"scalegnn/internal/par"
	"scalegnn/internal/tensor"
)

// Config holds common PPR parameters.
type Config struct {
	// Alpha is the teleport (restart) probability, in (0, 1].
	Alpha float64
	// Epsilon is the per-node residual threshold for forward push
	// (approximation guarantee: |pi(v) - p(v)| <= eps * deg(v)).
	Epsilon float64
	// MaxIter caps power-iteration rounds.
	MaxIter int
	// Tol is the L1 convergence tolerance for power iteration.
	Tol float64
}

// DefaultConfig returns the parameters used throughout the benchmarks:
// α = 0.15 (the APPNP default), ε = 1e-6, 100 iterations max.
func DefaultConfig() Config {
	return Config{Alpha: 0.15, Epsilon: 1e-6, MaxIter: 100, Tol: 1e-9}
}

func (c Config) validate() error {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("ppr: alpha %v outside (0,1]", c.Alpha)
	}
	if c.Epsilon < 0 {
		return fmt.Errorf("ppr: negative epsilon %v", c.Epsilon)
	}
	return nil
}

// PowerIteration computes the PPR vector of source s by iterating
// p_{t+1} = α e_s + (1-α) Pᵀ p_t with the random-walk operator, stopping
// when the L1 change falls below cfg.Tol or MaxIter is reached. Returns the
// vector, the number of iterations performed, and whether the iteration
// actually converged (L1 change < cfg.Tol). converged is false when MaxIter
// was exhausted first — the returned vector is then a truncated estimate,
// and callers that need the exact-up-to-Tol vector must check the flag
// rather than treating truncation as convergence.
func PowerIteration(g *graph.CSR, s int, cfg Config) (p []float64, iters int, converged bool, err error) {
	if err := cfg.validate(); err != nil {
		return nil, 0, false, err
	}
	if s < 0 || s >= g.N {
		return nil, 0, false, fmt.Errorf("ppr: source %d out of range [0,%d)", s, g.N)
	}
	sp := obs.Start("ppr.power_iteration")
	defer func() { sp.SetCount(int64(iters)); sp.End() }()
	// The mass-transfer step next = (A·D^{-1}) p is the column-stochastic
	// CSR operator, so each round is one row-parallel SpMV gather through
	// graph.Operator instead of a serial per-edge scatter. Dangling nodes
	// (degree 0) drop out of the operator entirely; their mass restarts at
	// the source below, matching the scatter formulation.
	op := graph.NewOperator(g, graph.NormColumn, false)
	var dangling []int
	for u := 0; u < g.N; u++ {
		if g.Degree(u) == 0 {
			dangling = append(dangling, u)
		}
	}
	p = make([]float64, g.N)
	next := make([]float64, g.N)
	p[s] = 1
	for ; iters < cfg.MaxIter; iters++ {
		op.ApplyVecInto(p, next)
		decay := 1 - cfg.Alpha
		var dangMass float64
		for _, u := range dangling {
			dangMass += p[u]
		}
		for i := range next {
			next[i] *= decay
		}
		next[s] += cfg.Alpha + decay*dangMass
		var diff float64
		for i := range p {
			d := p[i] - next[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		p, next = next, p
		if diff < cfg.Tol {
			iters++
			converged = true
			break
		}
	}
	return p, iters, converged, nil
}

// PushResult carries the output of ForwardPush: the reserve estimate, the
// leftover residual, and the number of push operations (the work measure
// the SCARA-style complexity claims are about).
type PushResult struct {
	Estimate []float64
	Residual []float64
	Pushes   int
}

// ForwardPush computes an ε-approximate PPR vector of source s with the
// local push algorithm. The invariant maintained throughout is
//
//	pi(v) = p(v) + Σ_u r(u) · pi_u(v)
//
// so when all residuals satisfy r(u) < ε·deg(u), every estimate is within
// ε·deg(v) of the truth. Work is proportional to pushed mass, independent
// of graph size for local queries.
func ForwardPush(g *graph.CSR, s int, cfg Config) (*PushResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if s < 0 || s >= g.N {
		return nil, fmt.Errorf("ppr: source %d out of range [0,%d)", s, g.N)
	}
	if cfg.Epsilon == 0 {
		return nil, fmt.Errorf("ppr: forward push requires epsilon > 0")
	}
	p := make([]float64, g.N)
	r := make([]float64, g.N)
	r[s] = 1
	queue := []int32{int32(s)}
	inQueue := make([]bool, g.N)
	inQueue[s] = true
	pushes := 0
	for len(queue) > 0 {
		u := int(queue[0])
		queue = queue[1:]
		inQueue[u] = false
		d := g.Degree(u)
		ru := r[u]
		if d == 0 {
			// Dangling: all residual mass becomes reserve at u (walk stuck,
			// teleports would restart; standard convention keeps it local).
			p[u] += ru
			r[u] = 0
			continue
		}
		if ru < cfg.Epsilon*float64(d) {
			continue
		}
		pushes++
		p[u] += cfg.Alpha * ru
		share := (1 - cfg.Alpha) * ru / float64(d)
		r[u] = 0
		for _, v := range g.Neighbors(u) {
			r[v] += share
			if !inQueue[v] && r[v] >= cfg.Epsilon*float64(g.Degree(int(v))) {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}
	return &PushResult{Estimate: p, Residual: r, Pushes: pushes}, nil
}

// MonteCarlo estimates the PPR vector of s from walks α-restart random
// walks, recording termination nodes. Unbiased; standard error shrinks as
// O(1/√walks).
func MonteCarlo(g *graph.CSR, s, walks int, alpha float64, rng *rand.Rand) ([]float64, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("ppr: alpha %v outside (0,1]", alpha)
	}
	if s < 0 || s >= g.N {
		return nil, fmt.Errorf("ppr: source %d out of range [0,%d)", s, g.N)
	}
	counts := make([]float64, g.N)
	for w := 0; w < walks; w++ {
		u := s
		for {
			if rng.Float64() < alpha {
				break
			}
			ns := g.Neighbors(u)
			if len(ns) == 0 {
				u = s // dangling: restart
				continue
			}
			u = int(ns[rng.IntN(len(ns))])
		}
		counts[u]++
	}
	inv := 1 / float64(walks)
	for i := range counts {
		counts[i] *= inv
	}
	return counts, nil
}

// Entry is a (node, score) pair.
type Entry struct {
	Node  int
	Score float64
}

// TopK returns the k largest entries of a score vector, ties broken by
// node ID, sorted descending by score.
func TopK(scores []float64, k int) []Entry {
	if k > len(scores) {
		k = len(scores)
	}
	entries := make([]Entry, 0, len(scores))
	for i, s := range scores {
		if s > 0 {
			entries = append(entries, Entry{Node: i, Score: s})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		return entries[i].Node < entries[j].Node
	})
	if k > len(entries) {
		k = len(entries)
	}
	return entries[:k]
}

// PushMatrix computes approximate PPR vectors for every node in sources and
// returns them as rows of a sparse map representation: result[i] maps node
// -> score for sources[i]. This is the precomputation step of
// SCARA/PPR-based decoupled propagation.
// Each source's push is independent, so the loop is chunked over
// internal/par: workers write disjoint out[i] slots and accumulate pushes
// into an atomic counter (integer addition is order-exact), keeping the
// result bitwise identical to the sequential loop.
func PushMatrix(g *graph.CSR, sources []int, cfg Config) ([]map[int32]float64, int, error) {
	rootSp := obs.Start("ppr.push_matrix")
	rootSp.SetCount(int64(len(sources)))
	defer rootSp.End()
	out := make([]map[int32]float64, len(sources))
	errs := make([]error, len(sources))
	var totalPushes atomic.Int64
	par.Range(len(sources), 1, func(lo, hi int) {
		// One child span per worker chunk: spans End concurrently from the
		// par.Range goroutines (the tracer buffer is goroutine-safe) and
		// carry the chunk's push count as its work measure.
		chunkSp := rootSp.Child("ppr.push_chunk")
		for i := lo; i < hi; i++ {
			res, err := ForwardPush(g, sources[i], cfg)
			if err != nil {
				errs[i] = fmt.Errorf("ppr: source %d: %w", sources[i], err)
				continue
			}
			totalPushes.Add(int64(res.Pushes))
			chunkSp.AddCount(int64(res.Pushes))
			row := make(map[int32]float64)
			for v, sc := range res.Estimate {
				if sc > 0 {
					row[int32(v)] = sc
				}
			}
			out[i] = row
		}
		chunkSp.End()
	})
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return out, int(totalPushes.Load()), nil
}

// PushVector generalizes forward push to an arbitrary (possibly signed)
// seed vector: it computes an approximation of
//
//	pi = α Σ_k (1−α)^k (A·D^{-1})^k seed
//
// (the mass-flow / column-normalized convention all push algorithms use:
// node u forwards r(u)/deg(u) to each neighbor) with per-node residual
// guarantee |r(v)| < eps·deg(v) at termination.
// This is the SCARA primitive: running push per FEATURE column (seed = a
// feature vector) instead of per node makes decoupled propagation
// complexity depend on the feature count, not on the number of query
// nodes.
func PushVector(g *graph.CSR, seed []float64, cfg Config) (*PushResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(seed) != g.N {
		return nil, fmt.Errorf("ppr: seed length %d != n %d", len(seed), g.N)
	}
	if cfg.Epsilon == 0 {
		return nil, fmt.Errorf("ppr: push requires epsilon > 0")
	}
	p := make([]float64, g.N)
	r := append([]float64(nil), seed...)
	inQueue := make([]bool, g.N)
	queue := make([]int32, 0, g.N)
	above := func(u int) bool {
		d := g.Degree(u)
		if d == 0 {
			return r[u] != 0
		}
		return r[u] >= cfg.Epsilon*float64(d) || -r[u] >= cfg.Epsilon*float64(d)
	}
	for u := 0; u < g.N; u++ {
		if above(u) {
			inQueue[u] = true
			queue = append(queue, int32(u))
		}
	}
	pushes := 0
	for len(queue) > 0 {
		u := int(queue[0])
		queue = queue[1:]
		inQueue[u] = false
		if !above(u) {
			continue
		}
		ru := r[u]
		d := g.Degree(u)
		if d == 0 {
			p[u] += ru
			r[u] = 0
			continue
		}
		pushes++
		p[u] += cfg.Alpha * ru
		share := (1 - cfg.Alpha) * ru / float64(d)
		r[u] = 0
		for _, v := range g.Neighbors(u) {
			r[v] += share
			if !inQueue[v] && above(int(v)) {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
	}
	return &PushResult{Estimate: p, Residual: r, Pushes: pushes}, nil
}

// DiffusionEmbedding computes the SCARA feature-oriented diffusion
// Z ≈ α Σ_k (1−α)^k (A·D^{-1})^k X column by column with PushVector — the
// decoupled precompute whose cost scales with the number of feature
// columns rather than graph queries. SCARA's re-normalization trick
// converts this to the symmetric Â diffusion by scaling features by
// D^{1/2} before and D^{-1/2} after. Returns the embedding and total
// pushes.
func DiffusionEmbedding(g *graph.CSR, x *tensor.Matrix, cfg Config) (*tensor.Matrix, int, error) {
	if x.Rows != g.N {
		return nil, 0, fmt.Errorf("ppr: features have %d rows for n=%d", x.Rows, g.N)
	}
	if cfg.Epsilon == 0 {
		// Exact mode: no residual threshold means push degenerates to
		// touching every node, so route the whole feature matrix through the
		// CSR×dense SpMM path instead of per-column scalar pushes.
		return diffusionExact(g, x, cfg)
	}
	// Columns diffuse independently: chunk them over internal/par with a
	// per-chunk scratch column. Workers write disjoint output columns and
	// the push counter is an order-exact integer sum, so the embedding is
	// bitwise identical to the sequential loop.
	rootSp := obs.Start("ppr.diffusion")
	rootSp.SetCount(int64(x.Cols))
	defer rootSp.End()
	out := tensor.New(x.Rows, x.Cols)
	errs := make([]error, x.Cols)
	var totalPushes atomic.Int64
	par.Range(x.Cols, 1, func(lo, hi int) {
		chunkSp := rootSp.Child("ppr.diffusion_chunk")
		col := make([]float64, g.N)
		for j := lo; j < hi; j++ {
			for i := 0; i < g.N; i++ {
				col[i] = x.At(i, j)
			}
			res, err := PushVector(g, col, cfg)
			if err != nil {
				errs[j] = fmt.Errorf("ppr: column %d: %w", j, err)
				continue
			}
			totalPushes.Add(int64(res.Pushes))
			chunkSp.AddCount(int64(res.Pushes))
			for i := 0; i < g.N; i++ {
				out.Set(i, j, res.Estimate[i])
			}
		}
		chunkSp.End()
	})
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return out, int(totalPushes.Load()), nil
}

// diffusionExact computes the truncated diffusion
// Z = α Σ_{k=0..MaxIter} (1−α)^k (A·D^{-1})^k X with the CSR SpMM operator,
// ping-ponging two dense matrices through Operator.ApplyInto — never
// materializing the dense adjacency and never running per-edge scalar
// loops. The geometric tail below cfg.Tol is truncated. Returns zero pushes
// (the SpMM path has no push-work measure).
func diffusionExact(g *graph.CSR, x *tensor.Matrix, cfg Config) (*tensor.Matrix, int, error) {
	if err := cfg.validate(); err != nil {
		return nil, 0, err
	}
	sp := obs.Start("ppr.diffusion_exact")
	defer sp.End()
	op := graph.NewOperator(g, graph.NormColumn, false)
	out := x.Clone()
	out.Scale(cfg.Alpha)
	cur := x.Clone()
	next := tensor.New(x.Rows, x.Cols)
	w := cfg.Alpha
	hops := 0
	for k := 1; k <= cfg.MaxIter; k++ {
		w *= 1 - cfg.Alpha
		if w < cfg.Tol {
			break
		}
		op.ApplyInto(cur, next)
		cur, next = next, cur
		out.AddScaled(w, cur)
		hops++
	}
	sp.SetCount(int64(hops))
	return out, 0, nil
}
