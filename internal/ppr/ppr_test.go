package ppr

import (
	"math"
	"testing"
	"testing/quick"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestPowerIterationSumsToOne(t *testing.T) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(200, 3, rng)
	p, iters, converged, err := PowerIteration(g, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Error("no iterations performed")
	}
	if !converged {
		t.Error("expected convergence within default MaxIter")
	}
	if math.Abs(sum(p)-1) > 1e-6 {
		t.Errorf("PPR mass = %v, want 1", sum(p))
	}
	for i, v := range p {
		if v < 0 {
			t.Fatalf("negative score at %d: %v", i, v)
		}
	}
}

// TestPowerIterationTruncationSignaled verifies the converged flag: a
// one-round cap on a graph whose PPR needs many rounds must report
// converged=false, and relaxing the cap must flip it to true with a
// different (more accurate) vector.
func TestPowerIterationTruncationSignaled(t *testing.T) {
	rng := tensor.NewRand(7)
	g := graph.BarabasiAlbert(300, 3, rng)
	tight := Config{Alpha: 0.1, MaxIter: 1, Tol: 1e-12}
	pTrunc, iters, converged, err := PowerIteration(g, 0, tight)
	if err != nil {
		t.Fatal(err)
	}
	if converged {
		t.Fatalf("MaxIter=1 reported converged (iters=%d)", iters)
	}
	if iters != 1 {
		t.Fatalf("iters = %d, want 1 under MaxIter=1", iters)
	}
	loose := tight
	loose.MaxIter = 1000
	pFull, _, converged, err := PowerIteration(g, 0, loose)
	if err != nil {
		t.Fatal(err)
	}
	if !converged {
		t.Fatal("MaxIter=1000 did not converge")
	}
	var diff float64
	for i := range pFull {
		diff += math.Abs(pFull[i] - pTrunc[i])
	}
	if diff < tight.Tol {
		t.Fatalf("truncated and converged vectors agree to %v — truncation test is vacuous", diff)
	}
}

func TestPowerIterationStarExact(t *testing.T) {
	// On a star with hub 0, the PPR from the hub has closed form:
	// walk alternates hub->leaf->hub. pi(hub) = α/(1-(1-α)²)·... easier:
	// pi(hub) = α + (1-α)² pi(hub) => pi(hub) = α / (1 - (1-α)²) · (α + ...)
	// Derive directly: from hub, walk is at hub at even steps, uniform leaf
	// at odd steps. pi(hub) = α Σ (1-α)^{2k} = α / (1-(1-α)²).
	g := graph.Star(5)
	alpha := 0.2
	cfg := Config{Alpha: alpha, MaxIter: 500, Tol: 1e-14}
	p, _, _, err := PowerIteration(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantHub := alpha / (1 - (1-alpha)*(1-alpha))
	if math.Abs(p[0]-wantHub) > 1e-9 {
		t.Errorf("pi(hub) = %v, want %v", p[0], wantHub)
	}
	wantLeaf := (1 - wantHub) / 4
	for i := 1; i < 5; i++ {
		if math.Abs(p[i]-wantLeaf) > 1e-9 {
			t.Errorf("pi(leaf %d) = %v, want %v", i, p[i], wantLeaf)
		}
	}
}

func TestPowerIterationValidation(t *testing.T) {
	g := graph.Path(3)
	if _, _, _, err := PowerIteration(g, -1, DefaultConfig()); err == nil {
		t.Error("negative source should error")
	}
	if _, _, _, err := PowerIteration(g, 0, Config{Alpha: 0, MaxIter: 10}); err == nil {
		t.Error("alpha=0 should error")
	}
	if _, _, _, err := PowerIteration(g, 0, Config{Alpha: 1.5, MaxIter: 10}); err == nil {
		t.Error("alpha>1 should error")
	}
}

func TestForwardPushInvariant(t *testing.T) {
	// Push invariant: estimate + residual mass == 1 throughout (reserve plus
	// all remaining residual accounts for the full probability mass).
	rng := tensor.NewRand(2)
	g := graph.BarabasiAlbert(300, 4, rng)
	res, err := ForwardPush(g, 7, Config{Alpha: 0.15, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	total := sum(res.Estimate) + sum(res.Residual)
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("estimate+residual mass = %v, want 1", total)
	}
	if res.Pushes == 0 {
		t.Error("no pushes performed")
	}
}

func TestForwardPushApproximationBound(t *testing.T) {
	rng := tensor.NewRand(3)
	g := graph.BarabasiAlbert(300, 4, rng)
	eps := 1e-5
	res, err := ForwardPush(g, 0, Config{Alpha: 0.15, Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	exact, _, _, err := PowerIteration(g, 0, Config{Alpha: 0.15, MaxIter: 1000, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	// Theory: |pi(v) - p(v)| <= eps * deg(v) — check with small slack for
	// power-iteration truncation.
	for v := range exact {
		bound := eps*float64(g.Degree(v)) + 1e-9
		if diff := math.Abs(exact[v] - res.Estimate[v]); diff > bound {
			t.Fatalf("node %d: |exact-push| = %v > eps*deg = %v", v, diff, bound)
		}
	}
	// Residuals must respect the stopping rule.
	for v, r := range res.Residual {
		if r >= eps*float64(g.Degree(v)) && g.Degree(v) > 0 {
			t.Fatalf("node %d residual %v violates threshold", v, r)
		}
	}
}

func TestForwardPushLocality(t *testing.T) {
	// With a loose epsilon, push on a large graph should touch far fewer
	// nodes than n — the sublinear-complexity claim of SCARA-style methods.
	rng := tensor.NewRand(4)
	g := graph.BarabasiAlbert(20000, 5, rng)
	res, err := ForwardPush(g, 11, Config{Alpha: 0.2, Epsilon: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, v := range res.Estimate {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero > g.N/10 {
		t.Errorf("push touched %d of %d nodes; expected local support", nonzero, g.N)
	}
}

func TestForwardPushValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := ForwardPush(g, 0, Config{Alpha: 0.15, Epsilon: 0}); err == nil {
		t.Error("epsilon=0 should error")
	}
	if _, err := ForwardPush(g, 9, Config{Alpha: 0.15, Epsilon: 1e-4}); err == nil {
		t.Error("out-of-range source should error")
	}
}

func TestMonteCarloConvergesToExact(t *testing.T) {
	rng := tensor.NewRand(5)
	g := graph.ErdosRenyi(50, 150, rng)
	exact, _, _, err := PowerIteration(g, 3, Config{Alpha: 0.2, MaxIter: 1000, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarlo(g, 3, 200000, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum(mc)-1) > 1e-9 {
		t.Errorf("MC mass = %v", sum(mc))
	}
	var maxErr float64
	for i := range exact {
		if d := math.Abs(exact[i] - mc[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 0.01 {
		t.Errorf("MC max error %v with 2e5 walks", maxErr)
	}
}

func TestMonteCarloErrorShrinksWithWalks(t *testing.T) {
	rng := tensor.NewRand(6)
	g := graph.BarabasiAlbert(100, 3, rng)
	exact, _, _, _ := PowerIteration(g, 0, Config{Alpha: 0.2, MaxIter: 1000, Tol: 1e-13})
	l1 := func(walks int) float64 {
		mc, err := MonteCarlo(g, 0, walks, 0.2, tensor.NewRand(77))
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		for i := range exact {
			e += math.Abs(exact[i] - mc[i])
		}
		return e
	}
	small, large := l1(500), l1(50000)
	if large >= small {
		t.Errorf("error did not shrink: %v (500 walks) vs %v (50000 walks)", small, large)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	g := graph.Path(3)
	rng := tensor.NewRand(1)
	if _, err := MonteCarlo(g, 0, 10, 0, rng); err == nil {
		t.Error("alpha=0 should error")
	}
	if _, err := MonteCarlo(g, 5, 10, 0.5, rng); err == nil {
		t.Error("bad source should error")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0, 0.5, 0.3, 0.5}
	top := TopK(scores, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	// Tie between nodes 2 and 4 at 0.5: node 2 first.
	if top[0].Node != 2 || top[1].Node != 4 || top[2].Node != 3 {
		t.Errorf("TopK order = %+v", top)
	}
	// k exceeding nonzero count truncates.
	if got := TopK([]float64{0, 1}, 5); len(got) != 1 {
		t.Errorf("TopK over-k = %+v", got)
	}
}

func TestPushMatrix(t *testing.T) {
	rng := tensor.NewRand(7)
	g := graph.ErdosRenyi(60, 150, rng)
	rows, pushes, err := PushMatrix(g, []int{0, 5, 10}, Config{Alpha: 0.15, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || pushes == 0 {
		t.Fatalf("rows=%d pushes=%d", len(rows), pushes)
	}
	for i, row := range rows {
		var mass float64
		for _, v := range row {
			mass += v
		}
		if mass <= 0 || mass > 1+1e-9 {
			t.Errorf("row %d mass = %v", i, mass)
		}
	}
}

// Property: on any connected graph, the source has the largest PPR score
// for reasonable alpha (locality of personalized PageRank).
func TestSourceDominatesProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRand(uint64(seed) + 100)
		g := graph.BarabasiAlbert(60, 2, rng)
		src := int(seed) % g.N
		p, _, _, err := PowerIteration(g, src, Config{Alpha: 0.3, MaxIter: 500, Tol: 1e-12})
		if err != nil {
			return false
		}
		for i, v := range p {
			if i != src && v > p[src] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPowerIteration(b *testing.B) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(10000, 5, rng)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := PowerIteration(g, i%g.N, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardPush(b *testing.B) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(10000, 5, rng)
	cfg := Config{Alpha: 0.15, Epsilon: 1e-4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ForwardPush(g, i%g.N, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPushVectorMatchesSingleSource(t *testing.T) {
	// With a one-hot seed, PushVector must coincide with ForwardPush.
	rng := tensor.NewRand(51)
	g := graph.BarabasiAlbert(200, 4, rng)
	cfg := Config{Alpha: 0.2, Epsilon: 1e-6}
	seed := make([]float64, g.N)
	seed[7] = 1
	rv, err := PushVector(g, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ForwardPush(g, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range rv.Estimate {
		if math.Abs(rv.Estimate[v]-rs.Estimate[v]) > 1e-9 {
			t.Fatalf("node %d: vector push %v vs source push %v", v, rv.Estimate[v], rs.Estimate[v])
		}
	}
}

func TestPushVectorSignedSeed(t *testing.T) {
	// Linearity: push(a - b) ≈ push(a) - push(b) within the ε bounds.
	rng := tensor.NewRand(52)
	g := graph.ErdosRenyi(100, 300, rng)
	cfg := Config{Alpha: 0.2, Epsilon: 1e-8}
	a := make([]float64, g.N)
	b := make([]float64, g.N)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	diff := make([]float64, g.N)
	for i := range diff {
		diff[i] = a[i] - b[i]
	}
	ra, err := PushVector(g, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := PushVector(g, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := PushVector(g, diff, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		want := ra.Estimate[v] - rb.Estimate[v]
		bound := 3 * cfg.Epsilon * float64(g.Degree(v)+1) * 10
		if math.Abs(rd.Estimate[v]-want) > bound+1e-6 {
			t.Fatalf("linearity violated at %d: %v vs %v", v, rd.Estimate[v], want)
		}
	}
}

func TestDiffusionEmbeddingMatchesDense(t *testing.T) {
	// Feature-push must approximate the dense diffusion
	// Z = α Σ_k (1-α)^k (D^{-1}A)^k X.
	rng := tensor.NewRand(53)
	g := graph.BarabasiAlbert(150, 3, rng)
	x := tensor.RandUniform(g.N, 4, 0, 1, rng)
	cfg := Config{Alpha: 0.2, Epsilon: 1e-7}
	z, pushes, err := DiffusionEmbedding(g, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pushes == 0 {
		t.Fatal("no pushes")
	}
	// Dense reference via K rounds of the column-normalized (mass-flow)
	// operator A·D^{-1}, the convention push implements.
	op := graph.NewOperator(g, graph.NormColumn, false)
	want := x.Clone()
	want.Scale(cfg.Alpha)
	cur := x
	w := cfg.Alpha
	for k := 1; k <= 200; k++ {
		cur = op.Apply(cur)
		w *= 1 - cfg.Alpha
		want.AddScaled(w, cur)
	}
	diff := z.Clone()
	diff.Sub(want)
	if diff.MaxAbs() > 1e-3 {
		t.Errorf("feature diffusion max error %v", diff.MaxAbs())
	}
}

func TestPushVectorValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := PushVector(g, []float64{1, 0}, Config{Alpha: 0.2, Epsilon: 1e-5}); err == nil {
		t.Error("wrong seed length should error")
	}
	if _, err := PushVector(g, make([]float64, 4), Config{Alpha: 0.2}); err == nil {
		t.Error("epsilon 0 should error")
	}
	x := tensor.New(2, 2)
	if _, _, err := DiffusionEmbedding(g, x, Config{Alpha: 0.2, Epsilon: 1e-5}); err == nil {
		t.Error("row mismatch should error")
	}
}

func TestDiffusionExactMatchesPush(t *testing.T) {
	// Epsilon == 0 selects the SpMM-backed exact diffusion; it must agree
	// with a tight push-based run and with the dense geometric series.
	rng := tensor.NewRand(59)
	g := graph.BarabasiAlbert(120, 3, rng)
	x := tensor.RandUniform(g.N, 4, 0, 1, rng)

	exact, pushes, err := DiffusionEmbedding(g, x, Config{Alpha: 0.2, Tol: 1e-10, MaxIter: 400})
	if err != nil {
		t.Fatal(err)
	}
	if pushes != 0 {
		t.Fatalf("exact path reported %d pushes, want 0", pushes)
	}

	push, _, err := DiffusionEmbedding(g, x, Config{Alpha: 0.2, Epsilon: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	diff := exact.Clone()
	diff.Sub(push)
	if diff.MaxAbs() > 1e-3 {
		t.Errorf("exact vs push max error %v", diff.MaxAbs())
	}

	// Dense reference: Z = α Σ_k (1-α)^k (A D^{-1})^k X.
	op := graph.NewOperator(g, graph.NormColumn, false)
	want := x.Clone()
	want.Scale(0.2)
	cur := x
	w := 0.2
	for k := 1; k <= 400; k++ {
		cur = op.Apply(cur)
		w *= 0.8
		want.AddScaled(w, cur)
	}
	diff = exact.Clone()
	diff.Sub(want)
	if diff.MaxAbs() > 1e-6 {
		t.Errorf("exact vs dense series max error %v", diff.MaxAbs())
	}
}
