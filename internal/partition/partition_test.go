package partition

import (
	"testing"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func modularGraph(t *testing.T, seed uint64) (*graph.CSR, []int) {
	t.Helper()
	g, labels, err := graph.SBM(graph.SBMConfig{
		Nodes: 1000, Blocks: 4, AvgDegree: 10, Homophily: 0.9,
	}, tensor.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g, labels
}

func checkValid(t *testing.T, a *Assignment, n int) {
	t.Helper()
	if len(a.Parts) != n {
		t.Fatalf("assignment length %d != n %d", len(a.Parts), n)
	}
	for u, p := range a.Parts {
		if p < 0 || p >= a.K {
			t.Fatalf("node %d in invalid part %d", u, p)
		}
	}
}

func TestHashBalanced(t *testing.T) {
	g, _ := modularGraph(t, 1)
	a, err := Hash(g, 4, tensor.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, a, g.N)
	q := Evaluate(g, a)
	if q.Balance > 1.25 {
		t.Errorf("hash balance %v", q.Balance)
	}
	// Random 4-way cut should land near 3/4 of edges.
	if q.CutFrac < 0.6 || q.CutFrac > 0.9 {
		t.Errorf("hash cut fraction %v, want ~0.75", q.CutFrac)
	}
}

func TestLDGBeatsHash(t *testing.T) {
	g, _ := modularGraph(t, 3)
	hash, err := Hash(g, 4, tensor.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	ldg, err := LDG(g, 4, 1.1, tensor.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, ldg, g.N)
	qh, ql := Evaluate(g, hash), Evaluate(g, ldg)
	if ql.CutFrac >= qh.CutFrac {
		t.Errorf("LDG cut %v not below hash %v", ql.CutFrac, qh.CutFrac)
	}
	if ql.Balance > 1.2 {
		t.Errorf("LDG balance %v exceeds slack", ql.Balance)
	}
}

func TestFennelBeatsHash(t *testing.T) {
	g, _ := modularGraph(t, 5)
	hash, _ := Hash(g, 4, tensor.NewRand(6))
	fennel, err := Fennel(g, 4, tensor.NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, fennel, g.N)
	qh, qf := Evaluate(g, hash), Evaluate(g, fennel)
	if qf.CutFrac >= qh.CutFrac {
		t.Errorf("Fennel cut %v not below hash %v", qf.CutFrac, qh.CutFrac)
	}
	if qf.Balance > 1.3 {
		t.Errorf("Fennel balance %v", qf.Balance)
	}
}

func TestMultilevelQuality(t *testing.T) {
	g, _ := modularGraph(t, 7)
	a, err := Multilevel(g, 4, 100, 5, tensor.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, a, g.N)
	q := Evaluate(g, a)
	hash, _ := Hash(g, 4, tensor.NewRand(8))
	qh := Evaluate(g, hash)
	if q.CutFrac >= qh.CutFrac {
		t.Errorf("multilevel cut %v not below hash %v", q.CutFrac, qh.CutFrac)
	}
	if q.Balance > 1.35 {
		t.Errorf("multilevel balance %v", q.Balance)
	}
}

func TestPartitionersRecoverPlantedBlocks(t *testing.T) {
	// With strong homophily and k = true blocks, a good partitioner's cut
	// should approach the planted inter-block edge fraction (~0.1).
	g, _ := modularGraph(t, 9)
	a, err := Multilevel(g, 4, 100, 8, tensor.NewRand(10))
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, a)
	if q.CutFrac > 0.45 {
		t.Errorf("multilevel cut %v far from planted structure (~0.1)", q.CutFrac)
	}
}

func TestValidation(t *testing.T) {
	g, _ := modularGraph(t, 11)
	rng := tensor.NewRand(12)
	if _, err := Hash(g, 0, rng); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := LDG(g, 2, 0.5, rng); err == nil {
		t.Error("slack < 1 should error")
	}
	empty, _ := graph.FromEdges(0, nil)
	if _, err := Fennel(empty, 2, rng); err == nil {
		t.Error("empty graph should error")
	}
}

func TestSinglePartTrivial(t *testing.T) {
	g, _ := modularGraph(t, 13)
	for name, f := range map[string]func() (*Assignment, error){
		"hash":   func() (*Assignment, error) { return Hash(g, 1, tensor.NewRand(1)) },
		"ldg":    func() (*Assignment, error) { return LDG(g, 1, 1.2, tensor.NewRand(1)) },
		"fennel": func() (*Assignment, error) { return Fennel(g, 1, tensor.NewRand(1)) },
	} {
		a, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		q := Evaluate(g, a)
		if q.EdgeCut != 0 || q.CommVolume != 0 {
			t.Errorf("%s: k=1 should have zero cut, got %+v", name, q)
		}
	}
}

func TestEvaluateKnownCut(t *testing.T) {
	// Path 0-1-2-3 split {0,1} | {2,3}: one cut edge.
	g := graph.Path(4)
	a := &Assignment{Parts: []int{0, 0, 1, 1}, K: 2}
	q := Evaluate(g, a)
	if q.EdgeCut != 1 {
		t.Errorf("cut = %d, want 1", q.EdgeCut)
	}
	if q.CommVolume != 2 { // nodes 1 and 2 each need one remote neighbor
		t.Errorf("comm volume = %d, want 2", q.CommVolume)
	}
	if q.Balance != 1 {
		t.Errorf("balance = %v, want 1", q.Balance)
	}
}

func TestSubgraphsCoverAllNodes(t *testing.T) {
	g, _ := modularGraph(t, 15)
	a, err := Fennel(g, 4, tensor.NewRand(16))
	if err != nil {
		t.Fatal(err)
	}
	subs, ids := Subgraphs(g, a)
	total := 0
	seen := make(map[int]bool)
	for p, sub := range subs {
		if sub.N != len(ids[p]) {
			t.Fatalf("part %d: subgraph n %d != ids %d", p, sub.N, len(ids[p]))
		}
		total += sub.N
		for _, id := range ids[p] {
			if seen[id] {
				t.Fatalf("node %d in two parts", id)
			}
			seen[id] = true
		}
	}
	if total != g.N {
		t.Errorf("parts cover %d of %d nodes", total, g.N)
	}
}

func TestGreedyGrowHandlesDisconnected(t *testing.T) {
	// Two components; multilevel must still assign every node.
	b := graph.NewBuilder(20)
	for i := 0; i < 9; i++ {
		b.AddEdge(i, i+1)
	}
	for i := 10; i < 19; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.MustBuild()
	a, err := Multilevel(g, 2, 6, 3, tensor.NewRand(17))
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, a, g.N)
}

func BenchmarkFennel(b *testing.B) {
	g, _, err := graph.SBM(graph.SBMConfig{Nodes: 50000, Blocks: 8, AvgDegree: 10, Homophily: 0.8}, tensor.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRand(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fennel(g, 8, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultilevel(b *testing.B) {
	g, _, err := graph.SBM(graph.SBMConfig{Nodes: 20000, Blocks: 8, AvgDegree: 10, Homophily: 0.8}, tensor.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRand(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Multilevel(g, 8, 2000, 3, rng); err != nil {
			b.Fatal(err)
		}
	}
}
