// Package partition implements the graph partitioning algorithms of
// tutorial §3.1.2: the model-agnostic path to GNN scalability that divides
// a graph into device-sized subgraphs for mini-batch or distributed
// training, optimizing the computation/communication trade-off.
//
// Implemented partitioners:
//
//   - Hash: random assignment (the no-information baseline).
//   - LDG (Linear Deterministic Greedy, Stanton-Kliot): streaming
//     assignment favoring the part holding the most neighbors, with a
//     multiplicative balance penalty.
//   - Fennel (Tsourakakis et al.): streaming assignment with an additive
//     α·γ·|part|^{γ-1} balance cost — the single-pass approximation of
//     modularity-style objectives.
//   - Multilevel: coarsen (heavy-edge matching), partition the small graph
//     greedily, project back and refine with Kernighan-Lin style boundary
//     moves — the METIS recipe.
//
// Quality is measured by edge cut, balance factor, and the communication
// volume a distributed GNN layer would incur (§3.1.4's "minimize and
// balance computation and communication").
package partition

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync/atomic"

	"scalegnn/internal/coarsen"
	"scalegnn/internal/graph"
	"scalegnn/internal/obs"
	"scalegnn/internal/par"
	"scalegnn/internal/tensor"
)

// Assignment is a node → part mapping with its part count.
type Assignment struct {
	Parts []int
	K     int
}

// validateK rejects nonsensical part counts.
func validateK(g *graph.CSR, k int) error {
	if k < 1 {
		return fmt.Errorf("partition: k=%d < 1", k)
	}
	if g.N == 0 {
		return fmt.Errorf("partition: empty graph")
	}
	return nil
}

// Hash assigns nodes to parts uniformly at random.
func Hash(g *graph.CSR, k int, rng *rand.Rand) (*Assignment, error) {
	if err := validateK(g, k); err != nil {
		return nil, err
	}
	parts := make([]int, g.N)
	for i := range parts {
		parts[i] = rng.IntN(k)
	}
	return &Assignment{Parts: parts, K: k}, nil
}

// LDG streams nodes in a random order, assigning each to
// argmax_p |N(v) ∩ P_p| · (1 − |P_p|/cap), with capacity cap = n/k·slack.
func LDG(g *graph.CSR, k int, slack float64, rng *rand.Rand) (*Assignment, error) {
	if err := validateK(g, k); err != nil {
		return nil, err
	}
	if slack < 1 {
		return nil, fmt.Errorf("partition: slack %v < 1", slack)
	}
	sp := obs.Start("partition.ldg")
	sp.SetCount(int64(g.N))
	defer sp.End()
	capacity := slack * float64(g.N) / float64(k)
	parts := make([]int, g.N)
	for i := range parts {
		parts[i] = -1
	}
	sizes := make([]float64, k)
	neighborCount := make([]float64, k)
	for _, u := range tensor.Perm(g.N, rng) {
		for i := range neighborCount {
			neighborCount[i] = 0
		}
		for _, v := range g.Neighbors(u) {
			if p := parts[v]; p >= 0 {
				neighborCount[p]++
			}
		}
		best, bestScore := 0, math.Inf(-1)
		for p := 0; p < k; p++ {
			if sizes[p] >= capacity {
				continue
			}
			score := neighborCount[p] * (1 - sizes[p]/capacity)
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		parts[u] = best
		sizes[best]++
	}
	return &Assignment{Parts: parts, K: k}, nil
}

// Fennel streams nodes in a random order with the Fennel objective:
// argmax_p |N(v) ∩ P_p| − α·γ·|P_p|^{γ−1}, using the paper's defaults
// γ = 1.5, α = m·(k^{γ-1})/n^γ.
func Fennel(g *graph.CSR, k int, rng *rand.Rand) (*Assignment, error) {
	if err := validateK(g, k); err != nil {
		return nil, err
	}
	sp := obs.Start("partition.fennel")
	sp.SetCount(int64(g.N))
	defer sp.End()
	const gamma = 1.5
	m := float64(g.NumEdges()) / 2
	n := float64(g.N)
	alpha := m * math.Pow(float64(k), gamma-1) / math.Pow(n, gamma)
	// Hard cap keeps worst-case balance bounded, as in the original paper.
	capacity := 1.1 * n / float64(k)
	parts := make([]int, g.N)
	for i := range parts {
		parts[i] = -1
	}
	sizes := make([]float64, k)
	neighborCount := make([]float64, k)
	for _, u := range tensor.Perm(g.N, rng) {
		for i := range neighborCount {
			neighborCount[i] = 0
		}
		for _, v := range g.Neighbors(u) {
			if p := parts[v]; p >= 0 {
				neighborCount[p]++
			}
		}
		best, bestScore := 0, math.Inf(-1)
		for p := 0; p < k; p++ {
			if sizes[p] >= capacity {
				continue
			}
			score := neighborCount[p] - alpha*gamma*math.Pow(sizes[p], gamma-1)
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		parts[u] = best
		sizes[best]++
	}
	return &Assignment{Parts: parts, K: k}, nil
}

// Multilevel partitions by coarsening to ~coarseTarget nodes with heavy-edge
// matching, greedily partitioning the coarse graph (balanced BFS regions),
// projecting the assignment back, and running `refineRounds` of
// Kernighan-Lin style single-node boundary refinement at the fine level.
func Multilevel(g *graph.CSR, k, coarseTarget, refineRounds int, rng *rand.Rand) (*Assignment, error) {
	if err := validateK(g, k); err != nil {
		return nil, err
	}
	if coarseTarget < k {
		coarseTarget = k
	}
	sp := obs.Start("partition.multilevel")
	sp.SetCount(int64(g.N))
	defer sp.End()
	res, err := coarsen.Coarsen(g, coarseTarget, coarsen.HeavyEdge, rng)
	if err != nil {
		return nil, fmt.Errorf("partition: coarsening: %w", err)
	}
	coarseParts := greedyGrow(res.Coarse, k, rng)
	parts := make([]int, g.N)
	for u, c := range res.Assign {
		parts[u] = coarseParts[c]
	}
	a := &Assignment{Parts: parts, K: k}
	for r := 0; r < refineRounds; r++ {
		if moved := refineOnce(g, a); moved == 0 {
			break
		}
	}
	return a, nil
}

// greedyGrow seeds k BFS fronts at random nodes and grows them one node at
// a time, always extending the currently smallest part — a simple balanced
// region-growing initial partition.
func greedyGrow(g *graph.CSR, k int, rng *rand.Rand) []int {
	parts := make([]int, g.N)
	for i := range parts {
		parts[i] = -1
	}
	queues := make([][]int32, k)
	sizes := make([]int, k)
	perm := tensor.Perm(g.N, rng)
	next := 0
	seed := func(p int) bool {
		for next < len(perm) {
			u := perm[next]
			next++
			if parts[u] == -1 {
				parts[u] = p
				sizes[p]++
				queues[p] = append(queues[p], int32(u))
				return true
			}
		}
		return false
	}
	for p := 0; p < k; p++ {
		seed(p)
	}
	assigned := 0
	for _, p := range parts {
		if p >= 0 {
			assigned++
		}
	}
	for assigned < g.N {
		// Pick the smallest part that can still grow.
		p := 0
		for q := 1; q < k; q++ {
			if sizes[q] < sizes[p] {
				p = q
			}
		}
		grew := false
		for len(queues[p]) > 0 && !grew {
			u := queues[p][0]
			queues[p] = queues[p][1:]
			for _, v := range g.Neighbors(int(u)) {
				if parts[v] == -1 {
					parts[v] = p
					sizes[p]++
					queues[p] = append(queues[p], v)
					assigned++
					grew = true
					break
				}
			}
			if grew {
				queues[p] = append(queues[p], u) // u may have more frontier
			}
		}
		if !grew {
			// Frontier exhausted (disconnected): reseed this part.
			if seed(p) {
				assigned++
			} else {
				break
			}
		}
	}
	// Any stragglers (fully isolated nodes): round-robin.
	for u := range parts {
		if parts[u] == -1 {
			parts[u] = u % k
		}
	}
	return parts
}

// refineOnce performs one pass of greedy boundary refinement: each node may
// move to the neighboring part with the largest cut gain, provided the move
// does not worsen balance beyond 10% slack. Returns the number of moves.
func refineOnce(g *graph.CSR, a *Assignment) int {
	sizes := make([]int, a.K)
	for _, p := range a.Parts {
		sizes[p]++
	}
	maxSize := int(1.1*float64(g.N)/float64(a.K)) + 1
	moved := 0
	gain := make([]int, a.K)
	for u := 0; u < g.N; u++ {
		cur := a.Parts[u]
		if sizes[cur] <= 1 {
			continue
		}
		for i := range gain {
			gain[i] = 0
		}
		for _, v := range g.Neighbors(u) {
			gain[a.Parts[v]]++
		}
		best, bestGain := cur, gain[cur]
		for p := 0; p < a.K; p++ {
			if p == cur || sizes[p] >= maxSize {
				continue
			}
			if gain[p] > bestGain {
				best, bestGain = p, gain[p]
			}
		}
		if best != cur {
			a.Parts[u] = best
			sizes[cur]--
			sizes[best]++
			moved++
		}
	}
	return moved
}

// Quality summarizes a partition for the E3 experiment.
type Quality struct {
	EdgeCut int     // undirected edges crossing parts
	CutFrac float64 // EdgeCut / total undirected edges
	// Balance is max part size / ideal size (1.0 = perfect).
	Balance float64
	// CommVolume is Σ_v |{parts ≠ part(v) containing a neighbor of v}| —
	// the number of node-feature transfers one distributed GNN layer needs.
	CommVolume int
}

// Evaluate computes partition quality metrics.
func Evaluate(g *graph.CSR, a *Assignment) Quality {
	sp := obs.Start("partition.evaluate")
	sp.SetCount(int64(g.N))
	defer sp.End()
	var q Quality
	sizes := make([]int, a.K)
	for _, p := range a.Parts {
		sizes[p]++
	}
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	ideal := float64(g.N) / float64(a.K)
	if ideal > 0 {
		q.Balance = float64(maxSize) / ideal
	}
	// Every metric here is an integer sum over nodes, so the scan chunks
	// over internal/par with per-chunk counters merged through atomics —
	// integer addition is order-exact, keeping the totals identical to the
	// sequential scan.
	var totalEdges, edgeCut, commVolume atomic.Int64
	par.Range(g.N, 256, func(lo, hi int) {
		var edges, cut, vol int64
		seen := make(map[int]struct{}, a.K)
		for u := lo; u < hi; u++ {
			clear(seen)
			pu := a.Parts[u]
			for _, v := range g.Neighbors(u) {
				if int(v) > u {
					edges++
					if a.Parts[v] != pu {
						cut++
					}
				}
				if pv := a.Parts[v]; pv != pu {
					seen[pv] = struct{}{}
				}
			}
			vol += int64(len(seen))
		}
		totalEdges.Add(edges)
		edgeCut.Add(cut)
		commVolume.Add(vol)
	})
	q.EdgeCut = int(edgeCut.Load())
	q.CommVolume = int(commVolume.Load())
	if totalEdges.Load() > 0 {
		q.CutFrac = float64(q.EdgeCut) / float64(totalEdges.Load())
	}
	return q
}

// Subgraphs materializes the per-part induced subgraphs with their original
// node IDs — the Cluster-GCN batch construction.
func Subgraphs(g *graph.CSR, a *Assignment) ([]*graph.CSR, [][]int) {
	sp := obs.Start("partition.subgraphs")
	sp.SetCount(int64(a.K))
	defer sp.End()
	members := make([][]int, a.K)
	for u, p := range a.Parts {
		members[p] = append(members[p], u)
	}
	// Each part's induced subgraph is built independently into its own
	// slot — chunk parts over internal/par (bitwise-identical outputs).
	subs := make([]*graph.CSR, a.K)
	ids := make([][]int, a.K)
	par.Range(a.K, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			subs[p], ids[p] = g.InducedSubgraph(members[p])
		}
	})
	return subs, ids
}
