package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded node→logits cache. Each model state owns one, so a
// hit can only ever return logits computed by that state's weights. Cached
// slices are shared with callers and must be treated as immutable.
//
// The nil *lruCache is valid and caches nothing — the engine holds one
// unconditionally whether or not caching is configured.
type lruCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[int]*list.Element
}

type lruEntry struct {
	node   int
	logits []float64
}

// newLRU returns a cache bounded to capacity entries, or nil (disabled)
// when capacity <= 0.
func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[int]*list.Element, capacity)}
}

// get returns the cached logits for node, refreshing its recency.
func (c *lruCache) get(node int) ([]float64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[node]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).logits, true
}

// add inserts (or refreshes) node's logits, evicting the least recently
// used entry when full.
func (c *lruCache) add(node int, logits []float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[node]; ok {
		el.Value.(*lruEntry).logits = logits
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).node)
	}
	c.m[node] = c.ll.PushFront(&lruEntry{node: node, logits: logits})
}

// len reports the number of cached entries (0 when disabled).
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
