// Package serve implements the online inference engine: it holds a trained
// decoupled model (precomputed propagation embeddings + head) behind an
// atomic pointer, coalesces concurrent per-node requests into one pooled
// batched forward, caches hot-node logits in a per-model LRU, and supports
// zero-downtime model hot-swap.
//
// Consistency contract: every request binds exactly one model state at
// entry — its cache lookups and its batched scoring both go through that
// state — so a request in flight during a swap is answered entirely by the
// old model or entirely by the new one, never a mix.
//
// The scoring path deliberately has one consumer: model Score calls reuse
// layer-internal buffers and are not concurrency-safe, so all scoring is
// funneled through a single dispatcher goroutine. Batching is therefore
// not just a throughput trick; it is what turns N concurrent single-node
// requests into one matmul instead of N serialized ones.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scalegnn/internal/obs"
	"scalegnn/internal/tensor"
)

// Model is the per-node inference contract the engine drives;
// models.NodeScorer satisfies it. Implementations are not required to be
// safe for concurrent Score calls — the engine serializes scoring.
type Model interface {
	Name() string
	Nodes() int
	Classes() int
	// Score reuses pooled scratch buffers with no per-buffer locking.
	// lint:confine score-path
	Score(idx []int, out *tensor.Matrix) error
}

// Engine errors.
var (
	// ErrNoModel means Predict was called before any model was swapped in.
	ErrNoModel = errors.New("serve: no model loaded")
	// ErrClosed means the engine is shutting down.
	ErrClosed = errors.New("serve: engine closed")
	// ErrBadNode means a requested node id is outside the served graph.
	ErrBadNode = errors.New("serve: node id out of range")
)

// Config tunes the engine.
type Config struct {
	// Window is how long the dispatcher waits after the first queued
	// request for more to coalesce into one batch. 0 disables waiting
	// (requests already queued are still drained into the batch).
	Window time.Duration
	// MaxBatch caps the node rows scored in one pooled forward; <= 0
	// means 256.
	MaxBatch int
	// CacheSize bounds the per-model hot-node logit LRU; <= 0 disables
	// caching.
	CacheSize int
	// Registry receives the engine's metrics (request latency histogram,
	// batch sizes, cache hit counters). Nil allocates a private registry;
	// pass an obs session registry to expose them via expvar.
	Registry *obs.Registry
}

// SwapInfo describes where a model state came from, for /healthz and logs.
type SwapInfo struct {
	Fingerprint uint64
	Source      string // snapshot path or "fit" for in-process training
	LoadedAt    time.Time
}

// state is one immutable serving generation: a model, its provenance, and
// its cache. Swapping installs a whole new state, so a cache can never
// hold logits from a different generation's weights.
type state struct {
	m     Model
	gen   uint64
	info  SwapInfo
	cache *lruCache // nil when caching is disabled
}

// request is one Predict's cache-miss remainder, queued to the dispatcher.
type request struct {
	st      *state
	miss    []int       // node ids needing computation
	missPos []int       // position of each miss in the caller's node list
	scores  [][]float64 // caller-owned, len(original nodes); filled at missPos
	done    chan error  // buffered(1); dispatcher never blocks sending
}

// Prediction is one answered request.
type Prediction struct {
	Model       string
	Generation  uint64
	Nodes       []int
	Predictions []int
	Logits      [][]float64
}

// Engine is the serving core. Create with NewEngine, install a model with
// Swap, answer requests with Predict, and Close when done.
type Engine struct {
	window   time.Duration
	maxBatch int
	cacheCap int

	cur     atomic.Pointer[state]
	gen     atomic.Uint64
	reqs    chan *request
	quit    chan struct{}
	done    chan struct{}
	closing sync.Once

	reg        *obs.Registry
	mRequests  *obs.Counter
	mErrors    *obs.Counter
	mBatches   *obs.Counter
	mCacheHits *obs.Counter
	mCacheMiss *obs.Counter
	mSwaps     *obs.Counter
	hLatency   *obs.Histogram
	hBatchRows *obs.Histogram
}

// batchRowBuckets is the bucket layout for batch-size histograms.
var batchRowBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// NewEngine starts the dispatcher and returns a ready (but model-less)
// engine.
func NewEngine(cfg Config) *Engine {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	e := &Engine{
		window:   cfg.Window,
		maxBatch: cfg.MaxBatch,
		cacheCap: cfg.CacheSize,
		reqs:     make(chan *request, 1024),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),

		reg:        cfg.Registry,
		mRequests:  cfg.Registry.Counter("serve.requests"),
		mErrors:    cfg.Registry.Counter("serve.request_errors"),
		mBatches:   cfg.Registry.Counter("serve.batches"),
		mCacheHits: cfg.Registry.Counter("serve.cache_hits"),
		mCacheMiss: cfg.Registry.Counter("serve.cache_misses"),
		mSwaps:     cfg.Registry.Counter("serve.swaps"),
		hLatency:   cfg.Registry.Histogram("serve.request_seconds", obs.DefaultDurationBuckets),
		hBatchRows: cfg.Registry.Histogram("serve.batch_rows", batchRowBuckets),
	}
	//lint:ignore naked-go serving dispatcher, not data-parallel work; lifetime bounded by Close
	go e.dispatch()
	return e
}

// Registry returns the engine's metrics registry (for /stats and expvar).
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Swap atomically installs a new model with a fresh (cold) cache and
// returns its generation. In-flight requests bound to the previous state
// complete against it; new requests see the new model immediately.
func (e *Engine) Swap(m Model, info SwapInfo) uint64 {
	if info.LoadedAt.IsZero() {
		info.LoadedAt = time.Now()
	}
	gen := e.gen.Add(1)
	e.cur.Store(&state{m: m, gen: gen, info: info, cache: newLRU(e.cacheCap)})
	e.mSwaps.Add(1)
	return gen
}

// Info describes the currently served model.
type Info struct {
	Model       string `json:"model"`
	Generation  uint64 `json:"generation"`
	Nodes       int    `json:"nodes"`
	Classes     int    `json:"classes"`
	Fingerprint string `json:"fingerprint"`
	Source      string `json:"source"`
	LoadedAt    string `json:"loaded_at"`
	CachedNodes int    `json:"cached_nodes"`
}

// Current returns the served model's Info, or ok=false before any Swap.
func (e *Engine) Current() (Info, bool) {
	st := e.cur.Load()
	if st == nil {
		return Info{}, false
	}
	return Info{
		Model:       st.m.Name(),
		Generation:  st.gen,
		Nodes:       st.m.Nodes(),
		Classes:     st.m.Classes(),
		Fingerprint: fmt.Sprintf("%016x", st.info.Fingerprint),
		Source:      st.info.Source,
		LoadedAt:    st.info.LoadedAt.UTC().Format(time.RFC3339Nano),
		CachedNodes: st.cache.len(),
	}, true
}

// Predict answers class predictions (and logits) for the given nodes. The
// whole answer comes from one model generation. Safe for concurrent use.
func (e *Engine) Predict(ctx context.Context, nodes []int) (*Prediction, error) {
	start := time.Now()
	if len(nodes) == 0 {
		return nil, fmt.Errorf("serve: empty node list")
	}
	st := e.cur.Load()
	if st == nil {
		return nil, ErrNoModel
	}
	n := st.m.Nodes()
	for _, v := range nodes {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("%w: node %d outside [0,%d)", ErrBadNode, v, n)
		}
	}
	e.mRequests.Add(1)

	scores := make([][]float64, len(nodes))
	var miss, missPos []int
	var hits int64
	for i, v := range nodes {
		if l, ok := st.cache.get(v); ok {
			scores[i] = l
			hits++
		} else {
			miss = append(miss, v)
			missPos = append(missPos, i)
		}
	}
	e.mCacheHits.Add(hits)
	e.mCacheMiss.Add(int64(len(miss)))

	if len(miss) > 0 {
		r := &request{st: st, miss: miss, missPos: missPos, scores: scores, done: make(chan error, 1)}
		select {
		case e.reqs <- r:
		case <-e.quit:
			return nil, ErrClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		select {
		case err := <-r.done:
			if err != nil {
				e.mErrors.Add(1)
				return nil, err
			}
		case <-e.quit:
			return nil, ErrClosed
		case <-ctx.Done():
			// The dispatcher may still fill scores; done is buffered so it
			// never blocks on an abandoned request.
			return nil, ctx.Err()
		}
	}

	preds := make([]int, len(nodes))
	for i, l := range scores {
		best := 0
		for j, v := range l {
			if v > l[best] {
				best = j
			}
		}
		preds[i] = best
	}
	e.hLatency.Observe(time.Since(start).Seconds())
	return &Prediction{
		Model:       st.m.Name(),
		Generation:  st.gen,
		Nodes:       nodes,
		Predictions: preds,
		Logits:      scores,
	}, nil
}

// Close stops the dispatcher and fails queued requests with ErrClosed.
// Idempotent.
func (e *Engine) Close() {
	e.closing.Do(func() { close(e.quit) })
	<-e.done
}

// dispatch is the single scoring goroutine: it forms batches from queued
// requests and answers them.
func (e *Engine) dispatch() {
	defer close(e.done)
	for {
		select {
		case r := <-e.reqs:
			e.collect(r)
		case <-e.quit:
			e.failQueued()
			return
		}
	}
}

// collect gathers more requests after the first — waiting up to the
// batching window when one is configured, otherwise just draining what is
// already queued — and scores the batch.
func (e *Engine) collect(first *request) {
	batch := []*request{first}
	rows := len(first.miss)
	if e.window > 0 {
		timer := time.NewTimer(e.window)
	windowed:
		for rows < e.maxBatch {
			select {
			case r := <-e.reqs:
				batch = append(batch, r)
				rows += len(r.miss)
			case <-timer.C:
				break windowed
			case <-e.quit:
				break windowed // score what we have; dispatch fails the rest
			}
		}
		timer.Stop()
	} else {
	drain:
		for rows < e.maxBatch {
			select {
			case r := <-e.reqs:
				batch = append(batch, r)
				rows += len(r.miss)
			default:
				break drain
			}
		}
	}
	e.runBatch(batch)
}

// runBatch groups the batch by model state (a swap can land between
// enqueues) and scores each group in one pooled forward.
func (e *Engine) runBatch(batch []*request) {
	for len(batch) > 0 {
		st := batch[0].st
		var group, rest []*request
		for _, r := range batch {
			if r.st == st {
				group = append(group, r)
			} else {
				rest = append(rest, r)
			}
		}
		e.scoreGroup(st, group)
		batch = rest
	}
}

// scoreGroup runs one batched Score for every miss in the group, fills
// caller score slots and the state's cache, and signals completion.
// lint:confine score-path
func (e *Engine) scoreGroup(st *state, group []*request) {
	total := 0
	for _, r := range group {
		total += len(r.miss)
	}
	nodes := make([]int, 0, total)
	for _, r := range group {
		nodes = append(nodes, r.miss...)
	}
	out := tensor.GetBuf(len(nodes), st.m.Classes())
	err := st.m.Score(nodes, out)
	if err == nil {
		row := 0
		for _, r := range group {
			for i := range r.miss {
				logits := append([]float64(nil), out.Row(row)...)
				r.scores[r.missPos[i]] = logits
				st.cache.add(r.miss[i], logits)
				row++
			}
		}
	}
	tensor.PutBuf(out)
	for _, r := range group {
		r.done <- err
	}
	e.mBatches.Add(1)
	e.hBatchRows.Observe(float64(total))
}

// failQueued drains whatever is still queued at shutdown. Racing senders
// are safe: Predict also selects on the closed quit channel.
func (e *Engine) failQueued() {
	for {
		select {
		case r := <-e.reqs:
			r.done <- ErrClosed
		default:
			return
		}
	}
}
