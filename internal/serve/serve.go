// Package serve implements the online inference engine: it holds a trained
// decoupled model (precomputed propagation embeddings + head) behind an
// atomic pointer, coalesces concurrent per-node requests into one pooled
// batched forward, caches hot-node logits in a per-model LRU, and supports
// zero-downtime model hot-swap.
//
// Consistency contract: every request binds exactly one model state at
// entry — its cache lookups and its batched scoring both go through that
// state — so a request in flight during a swap is answered entirely by the
// old model or entirely by the new one, never a mix.
//
// The scoring path deliberately has one consumer: model Score calls reuse
// layer-internal buffers and are not concurrency-safe, so all scoring is
// funneled through a single dispatcher goroutine. Batching is therefore
// not just a throughput trick; it is what turns N concurrent single-node
// requests into one matmul instead of N serialized ones.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scalegnn/internal/obs"
	"scalegnn/internal/tensor"
)

// Model is the per-node inference contract the engine drives;
// models.NodeScorer satisfies it. Implementations are not required to be
// safe for concurrent Score calls — the engine serializes scoring.
type Model interface {
	Name() string
	Nodes() int
	Classes() int
	// Score reuses pooled scratch buffers with no per-buffer locking.
	// lint:confine score-path
	Score(idx []int, out *tensor.Matrix) error
}

// Engine errors.
var (
	// ErrNoModel means Predict was called before any model was swapped in.
	ErrNoModel = errors.New("serve: no model loaded")
	// ErrClosed means the engine is shutting down.
	ErrClosed = errors.New("serve: engine closed")
	// ErrBadNode means a requested node id is outside the served graph.
	ErrBadNode = errors.New("serve: node id out of range")
)

// Config tunes the engine.
type Config struct {
	// Window is how long the dispatcher waits after the first queued
	// request for more to coalesce into one batch. 0 disables waiting
	// (requests already queued are still drained into the batch).
	Window time.Duration
	// MaxBatch caps the node rows scored in one pooled forward; <= 0
	// means 256.
	MaxBatch int
	// CacheSize bounds the per-model hot-node logit LRU; <= 0 disables
	// caching.
	CacheSize int
	// Registry receives the engine's metrics (request latency histogram,
	// batch sizes, cache hit counters). Nil allocates a private registry;
	// pass an obs session registry to expose them via expvar.
	Registry *obs.Registry
	// SLO configures the rolling-window latency SLO tracker (slo.go). The
	// zero value disables it; Health then never reports "degraded".
	SLO SLOConfig
}

// SwapInfo describes where a model state came from, for /healthz and logs.
type SwapInfo struct {
	Fingerprint uint64
	Source      string // snapshot path or "fit" for in-process training
	LoadedAt    time.Time
}

// state is one immutable serving generation: a model, its provenance, and
// its cache. Swapping installs a whole new state, so a cache can never
// hold logits from a different generation's weights.
type state struct {
	m     Model
	gen   uint64
	info  SwapInfo
	cache *lruCache // nil when caching is disabled
}

// request is one Predict's cache-miss remainder, queued to the dispatcher.
// The trace fields carry the request span across the coalescing fan-in:
// Predict stamps spanID/enq before the channel send, scoreGroup fills
// batchSpan/queueNS before the done send, and each side reads only what
// the channel hand-off ordered before it — the request span itself is
// never touched off its owning goroutine.
type request struct {
	st      *state
	miss    []int       // node ids needing computation
	missPos []int       // position of each miss in the caller's node list
	scores  [][]float64 // caller-owned, len(original nodes); filled at missPos
	done    chan error  // buffered(1); dispatcher never blocks sending

	enq       time.Time // when Predict queued the request
	spanID    uint64    // the caller's request span id (0 when untraced)
	batchSpan uint64    // set by scoreGroup: the shared batch-forward span id
	queueNS   int64     // set by scoreGroup: time spent queued, ns
}

// Prediction is one answered request.
type Prediction struct {
	Model       string
	Generation  uint64
	Nodes       []int
	Predictions []int
	Logits      [][]float64
}

// Engine is the serving core. Create with NewEngine, install a model with
// Swap, answer requests with Predict, and Close when done.
type Engine struct {
	window   time.Duration
	maxBatch int
	cacheCap int

	cur     atomic.Pointer[state]
	gen     atomic.Uint64
	reqs    chan *request
	quit    chan struct{}
	done    chan struct{}
	closing sync.Once

	reg        *obs.Registry
	mRequests  *obs.Counter
	mErrors    *obs.Counter
	mFailed    *obs.Counter
	mBatches   *obs.Counter
	mCacheHits *obs.Counter
	mCacheMiss *obs.Counter
	mSwaps     *obs.Counter
	hLatency   *obs.Histogram
	hBatchRows *obs.Histogram

	slo *sloTracker // nil when Config.SLO is unset
}

// batchRowBuckets is the bucket layout for batch-size histograms.
var batchRowBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// NewEngine starts the dispatcher and returns a ready (but model-less)
// engine.
func NewEngine(cfg Config) *Engine {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	e := &Engine{
		window:   cfg.Window,
		maxBatch: cfg.MaxBatch,
		cacheCap: cfg.CacheSize,
		reqs:     make(chan *request, 1024),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),

		reg:        cfg.Registry,
		mRequests:  cfg.Registry.Counter("serve.requests"),
		mErrors:    cfg.Registry.Counter("serve.request_errors"),
		mFailed:    cfg.Registry.Counter("serve.requests_failed"),
		mBatches:   cfg.Registry.Counter("serve.batches"),
		mCacheHits: cfg.Registry.Counter("serve.cache_hits"),
		mCacheMiss: cfg.Registry.Counter("serve.cache_misses"),
		mSwaps:     cfg.Registry.Counter("serve.swaps"),
		hLatency:   cfg.Registry.Histogram("serve.request_seconds", obs.DefaultDurationBuckets),
		hBatchRows: cfg.Registry.Histogram("serve.batch_rows", batchRowBuckets),

		slo: newSLOTracker(cfg.SLO, cfg.Registry),
	}
	//lint:ignore naked-go serving dispatcher, not data-parallel work; lifetime bounded by Close
	go e.dispatch()
	return e
}

// Registry returns the engine's metrics registry (for /stats and expvar).
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Swap atomically installs a new model with a fresh (cold) cache and
// returns its generation. In-flight requests bound to the previous state
// complete against it; new requests see the new model immediately.
func (e *Engine) Swap(m Model, info SwapInfo) uint64 {
	if info.LoadedAt.IsZero() {
		info.LoadedAt = time.Now()
	}
	gen := e.gen.Add(1)
	e.cur.Store(&state{m: m, gen: gen, info: info, cache: newLRU(e.cacheCap)})
	e.mSwaps.Add(1)
	return gen
}

// Info describes the currently served model.
type Info struct {
	Model       string `json:"model"`
	Generation  uint64 `json:"generation"`
	Nodes       int    `json:"nodes"`
	Classes     int    `json:"classes"`
	Fingerprint string `json:"fingerprint"`
	Source      string `json:"source"`
	LoadedAt    string `json:"loaded_at"`
	CachedNodes int    `json:"cached_nodes"`
}

// Current returns the served model's Info, or ok=false before any Swap.
func (e *Engine) Current() (Info, bool) {
	st := e.cur.Load()
	if st == nil {
		return Info{}, false
	}
	return Info{
		Model:       st.m.Name(),
		Generation:  st.gen,
		Nodes:       st.m.Nodes(),
		Classes:     st.m.Classes(),
		Fingerprint: fmt.Sprintf("%016x", st.info.Fingerprint),
		Source:      st.info.Source,
		LoadedAt:    st.info.LoadedAt.UTC().Format(time.RFC3339Nano),
		CachedNodes: st.cache.len(),
	}, true
}

// Health is the engine's operational status, served by /healthz. Info is
// embedded flat so consumers that only understand the model description
// (the load generator's serverModel) keep decoding it unchanged.
type Health struct {
	// Status is "ok", "degraded" (the SLO burn rate crossed its threshold),
	// or "unavailable" (no model loaded).
	Status string `json:"status"`
	*Info
	SLO *SLOStatus `json:"slo,omitempty"`
}

// Health reports the engine's current serving health, folding in the SLO
// tracker's rolling-window burn rate when one is configured. Degradation is
// predictive: the flip happens when the error budget is being spent faster
// than the objective sustains, not when the objective is already blown.
func (e *Engine) Health() Health {
	info, ok := e.Current()
	if !ok {
		return Health{Status: "unavailable"}
	}
	h := Health{Status: "ok", Info: &info, SLO: e.slo.status(time.Now())}
	if h.SLO != nil && h.SLO.Degraded {
		h.Status = "degraded"
	}
	return h
}

// Predict answers class predictions (and logits) for the given nodes. The
// whole answer comes from one model generation. Safe for concurrent use.
//
// When the context carries a request span (obs.ContextWithSpan — the HTTP
// handler attaches one), the span is annotated with the dispatcher fan-in:
// a link to the shared batch-forward span that scored this request's
// misses, and the time the request sat queued. With no span attached every
// annotation is a guarded no-op.
func (e *Engine) Predict(ctx context.Context, nodes []int) (*Prediction, error) {
	start := time.Now()
	sp := obs.SpanFromContext(ctx)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("serve: empty node list")
	}
	st := e.cur.Load()
	if st == nil {
		return nil, ErrNoModel
	}
	n := st.m.Nodes()
	for _, v := range nodes {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("%w: node %d outside [0,%d)", ErrBadNode, v, n)
		}
	}
	e.mRequests.Add(1)

	scores := make([][]float64, len(nodes))
	var miss, missPos []int
	var hits int64
	for i, v := range nodes {
		if l, ok := st.cache.get(v); ok {
			scores[i] = l
			hits++
		} else {
			miss = append(miss, v)
			missPos = append(missPos, i)
		}
	}
	e.mCacheHits.Add(hits)
	e.mCacheMiss.Add(int64(len(miss)))

	if len(miss) > 0 {
		r := &request{
			st: st, miss: miss, missPos: missPos, scores: scores,
			done: make(chan error, 1), enq: time.Now(), spanID: sp.SpanID(),
		}
		select {
		case e.reqs <- r:
		case <-e.quit:
			return nil, ErrClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		select {
		case err := <-r.done:
			if err != nil {
				e.mErrors.Add(1)
				return nil, err
			}
			// The done receive ordered scoreGroup's writes before these reads.
			sp.Link(r.batchSpan)
			sp.SetWait(time.Duration(r.queueNS))
		case <-e.quit:
			return nil, ErrClosed
		case <-ctx.Done():
			// The dispatcher may still fill scores; done is buffered so it
			// never blocks on an abandoned request.
			return nil, ctx.Err()
		}
	}

	preds := make([]int, len(nodes))
	for i, l := range scores {
		best := 0
		for j, v := range l {
			if v > l[best] {
				best = j
			}
		}
		preds[i] = best
	}
	lat := time.Since(start)
	e.hLatency.Observe(lat.Seconds())
	// Only answered requests feed the latency SLO; failures are visible in
	// serve.request_errors / serve.requests_failed instead.
	e.slo.observe(lat, time.Now())
	return &Prediction{
		Model:       st.m.Name(),
		Generation:  st.gen,
		Nodes:       nodes,
		Predictions: preds,
		Logits:      scores,
	}, nil
}

// Close stops the dispatcher and fails queued requests with ErrClosed.
// Idempotent.
func (e *Engine) Close() {
	e.closing.Do(func() { close(e.quit) })
	<-e.done
}

// dispatch is the single scoring goroutine: it forms batches from queued
// requests and answers them.
func (e *Engine) dispatch() {
	defer close(e.done)
	for {
		select {
		case r := <-e.reqs:
			e.collect(r)
		case <-e.quit:
			e.failQueued()
			return
		}
	}
}

// collect gathers more requests after the first — waiting up to the
// batching window when one is configured, otherwise just draining what is
// already queued — and scores the batch.
func (e *Engine) collect(first *request) {
	batch := []*request{first}
	rows := len(first.miss)
	if e.window > 0 {
		timer := time.NewTimer(e.window)
	windowed:
		for rows < e.maxBatch {
			select {
			case r := <-e.reqs:
				batch = append(batch, r)
				rows += len(r.miss)
			case <-timer.C:
				break windowed
			case <-e.quit:
				break windowed // score what we have; dispatch fails the rest
			}
		}
		timer.Stop()
	} else {
	drain:
		for rows < e.maxBatch {
			select {
			case r := <-e.reqs:
				batch = append(batch, r)
				rows += len(r.miss)
			default:
				break drain
			}
		}
	}
	e.runBatch(batch)
}

// runBatch groups the batch by model state (a swap can land between
// enqueues) and scores each group in one pooled forward.
func (e *Engine) runBatch(batch []*request) {
	for len(batch) > 0 {
		st := batch[0].st
		var group, rest []*request
		for _, r := range batch {
			if r.st == st {
				group = append(group, r)
			} else {
				rest = append(rest, r)
			}
		}
		e.scoreGroup(st, group)
		batch = rest
	}
}

// scoreGroup runs one batched Score for every miss in the group, fills
// caller score slots and the state's cache, and signals completion.
//
// This is the fan-in point of the trace model: one batch-forward span is
// shared by every coalesced request. Parent/child can't express that (a
// span has one parent), so the correlation is bidirectional links — the
// batch span links every request span it served, and each request struct
// carries the batch span id back so Predict can link the other direction.
// lint:confine score-path
func (e *Engine) scoreGroup(st *state, group []*request) {
	total := 0
	for _, r := range group {
		total += len(r.miss)
	}
	bsp := obs.Start("serve.batch_forward")
	if bsp.Active() {
		bsp.SetCount(int64(total))
		for _, r := range group {
			bsp.Link(r.spanID)
		}
	}
	now := time.Now()
	for _, r := range group {
		// Written before the done send below, which is what publishes them
		// to the waiting Predict goroutine.
		r.batchSpan = bsp.SpanID()
		r.queueNS = now.Sub(r.enq).Nanoseconds()
	}
	nodes := make([]int, 0, total)
	for _, r := range group {
		nodes = append(nodes, r.miss...)
	}
	out := tensor.GetBuf(len(nodes), st.m.Classes())
	err := st.m.Score(nodes, out)
	if err == nil {
		row := 0
		for _, r := range group {
			for i := range r.miss {
				logits := append([]float64(nil), out.Row(row)...)
				r.scores[r.missPos[i]] = logits
				st.cache.add(r.miss[i], logits)
				row++
			}
		}
	}
	tensor.PutBuf(out)
	bsp.End()
	for _, r := range group {
		r.done <- err
	}
	e.mBatches.Add(1)
	e.hBatchRows.Observe(float64(total))
}

// failQueued drains whatever is still queued at shutdown, counting each
// failed request into serve.requests_failed so drained-on-shutdown errors
// are visible in metrics. Racing senders are safe: Predict also selects on
// the closed quit channel.
func (e *Engine) failQueued() {
	for {
		select {
		case r := <-e.reqs:
			r.done <- ErrClosed
			e.mFailed.Add(1)
		default:
			return
		}
	}
}
