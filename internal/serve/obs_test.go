package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"scalegnn/internal/obs"
)

// TestTracePropagationConcurrent is the fan-in tracing contract under
// -race: 8 concurrent /predict calls, each carrying its own inbound W3C
// traceparent, coalesce into shared batch forwards — yet every request
// span must keep its own trace id, link the batch-forward span that scored
// it, record queue wait, and echo its trace id back in the response
// header.
func TestTracePropagationConcurrent(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	e := NewEngine(Config{Window: 20 * time.Millisecond})
	defer e.Close()
	e.Swap(newFake("T", 1), SwapInfo{Source: "test"})
	s := startServer(t, e, nil)

	const clients = 8
	type result struct {
		inTrace  string // the trace id we sent
		outTrace string // the trace id the response header carried
		err      error
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		//lint:ignore naked-go concurrent request clients under test; joined via WaitGroup
		go func(i int) {
			defer wg.Done()
			inbound := fmt.Sprintf("00-%032x-%016x-01", i+1, i+1)
			req, err := http.NewRequest(http.MethodGet,
				fmt.Sprintf("http://%s/predict?node=%d", s.Addr(), i), nil)
			if err != nil {
				results[i].err = err
				return
			}
			req.Header.Set("Traceparent", inbound)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				results[i].err = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			results[i].inTrace = inbound[3:35]
			echo, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
			if !ok {
				results[i].err = fmt.Errorf("bad response traceparent %q", resp.Header.Get("Traceparent"))
				return
			}
			results[i].outTrace = echo.Trace.String()
		}(i)
	}
	wg.Wait()

	wantTraces := map[string]bool{}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("client %d: %v", i, r.err)
		}
		if r.outTrace != r.inTrace {
			t.Errorf("client %d: response trace %s != inbound %s", i, r.outTrace, r.inTrace)
		}
		wantTraces[r.inTrace] = true
	}
	if len(wantTraces) != clients {
		t.Fatalf("expected %d distinct traces, got %d", clients, len(wantTraces))
	}

	// The spans must tell the same story: one request span per trace, each
	// linking a batch-forward span, each having waited in the queue.
	batchIDs := map[uint64]bool{}
	batchLinks := map[uint64]bool{}
	for _, rec := range tr.Snapshot() {
		if rec.Name == "serve.batch_forward" {
			batchIDs[rec.ID] = true
			for _, l := range rec.Links {
				batchLinks[l] = true
			}
		}
	}
	if len(batchIDs) == 0 {
		t.Fatal("no serve.batch_forward spans recorded")
	}
	gotTraces := map[string]bool{}
	for _, rec := range tr.Snapshot() {
		if rec.Name != "serve.request" {
			continue
		}
		gotTraces[rec.Trace] = true
		if rec.Remote == "" {
			t.Errorf("request span %d lost its remote parent", rec.ID)
		}
		if len(rec.Links) != 1 || !batchIDs[rec.Links[0]] {
			t.Errorf("request span %d links %v, want exactly one batch-forward id from %v",
				rec.ID, rec.Links, batchIDs)
		}
		if rec.Wait <= 0 {
			t.Errorf("request span %d recorded no queue wait", rec.ID)
		}
		if !batchLinks[rec.ID] {
			t.Errorf("batch-forward spans do not link back to request span %d", rec.ID)
		}
	}
	for tr := range wantTraces {
		if !gotTraces[tr] {
			t.Errorf("trace %s sent but never recorded; got %v", tr, gotTraces)
		}
	}
}

// TestPredictUntracedHasNoHeader pins the disabled path: with no tracer,
// /predict answers without a Traceparent header and records nothing.
func TestPredictUntracedHasNoHeader(t *testing.T) {
	obs.SetTracer(nil)
	e := NewEngine(Config{})
	defer e.Close()
	e.Swap(newFake("T", 1), SwapInfo{Source: "test"})
	s := startServer(t, e, nil)

	req, err := http.NewRequest(http.MethodGet, "http://"+s.Addr()+"/predict?node=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Traceparent"); got != "" {
		t.Errorf("untraced response carries Traceparent %q", got)
	}
}

// TestMetricsEndpoint scrapes /metrics after traffic and validates the
// exposition with the strict hand-rolled parser.
func TestMetricsEndpoint(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	e.Swap(newFake("T", 1), SwapInfo{Source: "test"})
	s := startServer(t, e, nil)

	if code := getJSON(t, "http://"+s.Addr()+"/predict?node=1", nil); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("scrape invalid: %v\n%s", err, body)
	}
	for _, needle := range []string{
		"serve_requests_total 1",
		`serve_request_seconds_bucket{le="+Inf"} 1`,
		"serve_request_seconds_sum",
		"serve_request_seconds_count 1",
		"serve_batch_rows_bucket",
	} {
		if !strings.Contains(string(body), needle) {
			t.Errorf("scrape missing %q\n%s", needle, body)
		}
	}
}

// TestMethodNotAllowed sweeps every route with a verb it does not accept
// and expects 405 plus the Allow header naming what it does.
func TestMethodNotAllowed(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	e.Swap(newFake("T", 1), SwapInfo{Source: "test"})
	s := startServer(t, e, nil)

	cases := []struct {
		method, path, allow string
	}{
		{http.MethodDelete, "/predict", "GET, POST"},
		{http.MethodPut, "/predict", "GET, POST"},
		{http.MethodPost, "/healthz", "GET"},
		{http.MethodDelete, "/healthz", "GET"},
		{http.MethodPost, "/stats", "GET"},
		{http.MethodPost, "/metrics", "GET"},
		{http.MethodGet, "/admin/swap", "POST"},
		{http.MethodDelete, "/admin/swap", "POST"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, "http://"+s.Addr()+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s: Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
	}
}

func TestSLOTrackerBurnMath(t *testing.T) {
	// Objective 0.9 → 10% error budget. 5 breaches in 10 requests is a 50%
	// breach rate: burn = 0.5/0.1 = 5.
	tk := newSLOTracker(SLOConfig{Target: 10 * time.Millisecond, Objective: 0.9, Window: 3 * time.Second}, nil)
	base := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		tk.observe(time.Millisecond, base) // meets target
		tk.observe(20*time.Millisecond, base)
	}
	st := tk.status(base)
	if st.Requests != 10 || st.Breached != 5 {
		t.Fatalf("window = %d/%d, want 5/10", st.Breached, st.Requests)
	}
	if st.BurnRate < 4.99 || st.BurnRate > 5.01 {
		t.Errorf("burn rate = %v, want 5.0", st.BurnRate)
	}
	if !st.Degraded {
		t.Error("burn 5x threshold 1.0 should degrade")
	}

	// The window forgets: after 2x the window everything has expired.
	later := tk.status(base.Add(6 * time.Second))
	if later.Requests != 0 || later.BurnRate != 0 || later.Degraded {
		t.Errorf("expired window = %+v, want empty and healthy", later)
	}
}

func TestSLOTrackerDefaultsAndNil(t *testing.T) {
	if tk := newSLOTracker(SLOConfig{}, nil); tk != nil {
		t.Fatal("zero Target should disable the tracker")
	}
	var tk *sloTracker
	tk.observe(time.Second, time.Now()) // nil-safe
	if st := tk.status(time.Now()); st != nil {
		t.Errorf("nil tracker status = %+v, want nil", st)
	}

	tk = newSLOTracker(SLOConfig{Target: time.Millisecond}, nil)
	if tk.cfg.Objective != 0.99 || tk.cfg.Window != 60*time.Second || tk.cfg.BurnThreshold != 1.0 {
		t.Errorf("defaults = %+v", tk.cfg)
	}
}

func TestEngineHealthDegrades(t *testing.T) {
	e := NewEngine(Config{SLO: SLOConfig{Target: time.Nanosecond, Objective: 0.99, Window: 10 * time.Second}})
	defer e.Close()
	if h := e.Health(); h.Status != "unavailable" {
		t.Fatalf("health before swap = %q, want unavailable", h.Status)
	}
	e.Swap(newFake("T", 1), SwapInfo{Source: "test"})
	if h := e.Health(); h.Status != "ok" || h.SLO == nil {
		t.Fatalf("health after swap = %q (slo=%v), want ok with SLO status", h.Status, h.SLO)
	}

	// Every real request breaches a 1ns target.
	s := startServer(t, e, nil)
	for i := 0; i < 5; i++ {
		if code := getJSON(t, fmt.Sprintf("http://%s/predict?node=%d", s.Addr(), i), nil); code != http.StatusOK {
			t.Fatalf("predict status %d", code)
		}
	}
	h := e.Health()
	if h.Status != "degraded" || h.SLO == nil || !h.SLO.Degraded {
		t.Fatalf("health under breach = %+v, want degraded", h)
	}
	// /healthz still answers 200 — the status field carries the signal.
	var resp struct {
		Status string `json:"status"`
		Model  string `json:"model"`
		SLO    *SLOStatus
	}
	if code := getJSON(t, "http://"+s.Addr()+"/healthz", &resp); code != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", code)
	}
	if resp.Status != "degraded" || resp.Model != "T" {
		t.Errorf("healthz = %+v", resp)
	}
	if v := e.Registry().Gauge("serve.slo_burn_rate").Value(); v < 1 {
		t.Errorf("serve.slo_burn_rate gauge = %v, want >= 1", v)
	}
}

// TestFailQueuedCountsFailures drives failQueued directly against a
// dispatcher-less engine: every request drained at shutdown must get
// ErrClosed and count into serve.requests_failed.
func TestFailQueuedCountsFailures(t *testing.T) {
	reg := obs.NewRegistry()
	e := &Engine{
		reqs:    make(chan *request, 4),
		mFailed: reg.Counter("serve.requests_failed"),
	}
	r1 := &request{done: make(chan error, 1)}
	r2 := &request{done: make(chan error, 1)}
	e.reqs <- r1
	e.reqs <- r2
	e.failQueued()
	for i, r := range []*request{r1, r2} {
		select {
		case err := <-r.done:
			if err != ErrClosed {
				t.Errorf("request %d: err = %v, want ErrClosed", i, err)
			}
		default:
			t.Errorf("request %d: no completion signal", i)
		}
	}
	if got := e.mFailed.Value(); got != 2 {
		t.Errorf("serve.requests_failed = %d, want 2", got)
	}
	if got := reg.Counter("serve.requests_failed").Value(); got != 2 {
		t.Errorf("registry counter = %d, want 2", got)
	}
}
