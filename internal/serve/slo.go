package serve

import (
	"sync"
	"time"

	"scalegnn/internal/obs"
)

// slo.go is the latency-SLO half of serving health. The engine keeps a
// rolling window of request outcomes (latency under/over target) and
// reports the SLO *burn rate*: how fast the error budget is being spent.
//
//	budget   = 1 − objective              (e.g. 1% of requests may breach)
//	burn     = breachedFraction / budget  (1.0 = spending exactly on budget)
//
// A burn rate ≥ the threshold means the window is consuming budget faster
// than the objective allows — if it keeps up, the SLO *will* be blown —
// so /healthz flips to "degraded" while the objective itself may still
// technically hold. That early flip is the point: load balancers and
// operators react to the trend, not the post-mortem.

// SLOConfig configures the engine's rolling-window latency SLO tracker.
// The zero value (Target == 0) disables tracking entirely.
type SLOConfig struct {
	// Target is the per-request latency target; a request slower than this
	// breaches. Zero disables SLO tracking.
	Target time.Duration
	// Objective is the fraction of requests that must meet Target
	// (default 0.99, i.e. a 1% error budget).
	Objective float64
	// Window is the rolling window the burn rate is computed over
	// (default 60s).
	Window time.Duration
	// BurnThreshold is the burn rate at or above which health degrades
	// (default 1.0 — degrade as soon as budget is being spent faster than
	// the objective sustains).
	BurnThreshold float64
}

// SLOStatus is the tracker's externally visible state, embedded in
// /healthz and /stats responses.
type SLOStatus struct {
	TargetMS      float64 `json:"target_ms"`
	Objective     float64 `json:"objective"`
	WindowS       float64 `json:"window_s"`
	BurnThreshold float64 `json:"burn_threshold"`
	// Requests and Breached count over the rolling window.
	Requests int64 `json:"requests"`
	Breached int64 `json:"breached"`
	// BurnRate is breached/requests divided by the error budget; 0 with no
	// requests in the window.
	BurnRate float64 `json:"burn_rate"`
	// Degraded reports BurnRate >= BurnThreshold.
	Degraded bool `json:"degraded"`
}

// sloSlots is the ring size: the window is divided into this many epochs,
// so expiry granularity is Window/sloSlots.
const sloSlots = 30

type sloSlot struct {
	epoch    int64
	total    int64
	breached int64
}

// sloTracker is the rolling-window implementation: a ring of per-epoch
// buckets keyed by epoch number, so expiry is O(1) per observation (a
// stale slot is overwritten when its epoch comes around again) and status
// is a 30-slot sweep. A mutex, not atomics: observe runs once per request
// after scoring, far off the per-row hot path.
type sloTracker struct {
	cfg     SLOConfig
	slotDur time.Duration
	burn    *obs.Gauge // serve.slo_burn_rate, nil-safe

	mu    sync.Mutex
	slots [sloSlots]sloSlot
}

// newSLOTracker returns nil when cfg.Target is zero — the engine treats a
// nil tracker as "no SLO" everywhere.
func newSLOTracker(cfg SLOConfig, reg *obs.Registry) *sloTracker {
	if cfg.Target <= 0 {
		return nil
	}
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		cfg.Objective = 0.99
	}
	if cfg.Window <= 0 {
		cfg.Window = 60 * time.Second
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = 1.0
	}
	t := &sloTracker{cfg: cfg, slotDur: cfg.Window / sloSlots}
	if t.slotDur <= 0 {
		t.slotDur = time.Millisecond
	}
	if reg != nil {
		t.burn = reg.Gauge("serve.slo_burn_rate")
	}
	return t
}

// observe records one request outcome at time now.
func (t *sloTracker) observe(latency time.Duration, now time.Time) {
	if t == nil {
		return
	}
	epoch := now.UnixNano() / int64(t.slotDur)
	breach := int64(0)
	if latency > t.cfg.Target {
		breach = 1
	}
	t.mu.Lock()
	s := &t.slots[epoch%sloSlots]
	if s.epoch != epoch {
		s.epoch, s.total, s.breached = epoch, 0, 0
	}
	s.total++
	s.breached += breach
	burn := t.burnLocked(epoch)
	t.mu.Unlock()
	t.burn.Set(burn)
}

// status returns the tracker's current window state at time now (nil
// receiver → nil, meaning "no SLO configured").
func (t *sloTracker) status(now time.Time) *SLOStatus {
	if t == nil {
		return nil
	}
	epoch := now.UnixNano() / int64(t.slotDur)
	t.mu.Lock()
	total, breached := t.windowLocked(epoch)
	t.mu.Unlock()
	st := &SLOStatus{
		TargetMS:      float64(t.cfg.Target) / float64(time.Millisecond),
		Objective:     t.cfg.Objective,
		WindowS:       t.cfg.Window.Seconds(),
		BurnThreshold: t.cfg.BurnThreshold,
		Requests:      total,
		Breached:      breached,
	}
	if total > 0 {
		st.BurnRate = (float64(breached) / float64(total)) / (1 - t.cfg.Objective)
	}
	st.Degraded = st.BurnRate >= t.cfg.BurnThreshold
	return st
}

// windowLocked sums the live (non-expired) slots as of epoch.
func (t *sloTracker) windowLocked(epoch int64) (total, breached int64) {
	oldest := epoch - sloSlots + 1
	for i := range t.slots {
		if s := &t.slots[i]; s.epoch >= oldest && s.epoch <= epoch {
			total += s.total
			breached += s.breached
		}
	}
	return total, breached
}

// burnLocked computes the burn rate as of epoch.
func (t *sloTracker) burnLocked(epoch int64) float64 {
	total, breached := t.windowLocked(epoch)
	if total == 0 {
		return 0
	}
	return (float64(breached) / float64(total)) / (1 - t.cfg.Objective)
}
