package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"scalegnn/internal/ckpt"
	"scalegnn/internal/obs"
)

// Loader materializes a Model from a source string (a snapshot path or
// checkpoint directory) for /admin/swap. It returns the model and its
// provenance; an error wrapping ckpt.ErrFingerprint means the snapshot
// belongs to a different run configuration and the swap is rejected with
// 409 Conflict.
type Loader func(source string) (Model, SwapInfo, error)

// Server is the HTTP front end over an Engine:
//
//	GET/POST /predict     — class predictions (and logits) for node ids
//	GET      /healthz     — serving health: model info + SLO burn status
//	GET      /stats       — engine counters and latency quantiles
//	GET      /metrics     — Prometheus text exposition of the registry
//	POST     /admin/swap  — hot-swap the model from a new snapshot
//
// Any other verb on these routes answers 405 with an Allow header.
//
// /predict is trace-aware: an inbound W3C traceparent header continues the
// caller's trace, otherwise a fresh trace id is minted (when tracing is
// on); the response carries the outbound traceparent naming the request
// span as parent, and the span is attached to the request context so the
// engine can link it to the batch-forward span it is scored in.
type Server struct {
	eng    *Engine
	loader Loader
	srv    *http.Server
	ln     net.Listener
	log    *slog.Logger // nil disables access logging
}

// NewServer wires the handlers. loader may be nil, which disables
// /admin/swap (501).
func NewServer(eng *Engine, loader Loader) *Server {
	s := &Server{eng: eng, loader: loader}
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", methods(s.handlePredict, http.MethodGet, http.MethodPost))
	mux.HandleFunc("/healthz", methods(s.handleHealth, http.MethodGet))
	mux.HandleFunc("/stats", methods(s.handleStats, http.MethodGet))
	mux.HandleFunc("/metrics", methods(obs.MetricsHandler(eng.Registry()).ServeHTTP, http.MethodGet))
	mux.HandleFunc("/admin/swap", methods(s.handleSwap, http.MethodPost))
	s.srv = &http.Server{
		Handler: mux,
		// A stalled client must not wedge a serving thread; predictions are
		// small, so unlike the obs debug listener nothing here streams.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return s
}

// SetAccessLog installs a structured access logger: one line per /predict
// request (method, status, node count, latency) correlated by trace_id
// when tracing is on. Call before Start; nil (the default) disables.
func (s *Server) SetAccessLog(l *slog.Logger) { s.log = l }

// methods gates a handler to the given verbs; anything else is answered
// with 405 Method Not Allowed and an Allow header listing what is.
func methods(h http.HandlerFunc, allow ...string) http.HandlerFunc {
	allowHeader := strings.Join(allow, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		for _, m := range allow {
			if r.Method == m {
				h(w, r)
				return
			}
		}
		w.Header().Set("Allow", allowHeader)
		writeError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("method %s not allowed (allow: %s)", r.Method, allowHeader))
	}
}

// Start binds addr (":0" picks a free port) and serves until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	//lint:ignore naked-go HTTP accept loop, not data-parallel work; lifetime bounded by Close
	go func() {
		// Serve returns ErrServerClosed on Close; anything else means the
		// listener died out from under us.
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "serve: http server: %v\n", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and tears the listener down. The engine is owned
// by the caller and is not closed here.
func (s *Server) Close() error { return s.srv.Close() }

// predictRequest is the POST /predict body.
type predictRequest struct {
	Nodes  []int `json:"nodes"`
	Logits bool  `json:"logits"`
}

// predictResponse is the /predict reply.
type predictResponse struct {
	Model       string      `json:"model"`
	Generation  uint64      `json:"generation"`
	Nodes       []int       `json:"nodes"`
	Predictions []int       `json:"predictions"`
	Logits      [][]float64 `json:"logits,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure here means the client hung up mid-response; there
	// is no channel left to report it on.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// parseNodes reads node ids from ?node=/?nodes= (GET) or the JSON body
// (POST).
func parseNodes(r *http.Request) ([]int, bool, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		raw := q.Get("nodes")
		if raw == "" {
			raw = q.Get("node")
		}
		if raw == "" {
			return nil, false, fmt.Errorf("missing ?node= or ?nodes=")
		}
		parts := strings.Split(raw, ",")
		nodes := make([]int, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, false, fmt.Errorf("bad node id %q", p)
			}
			nodes = append(nodes, v)
		}
		wantLogits := q.Get("logits") == "1" || q.Get("logits") == "true"
		return nodes, wantLogits, nil
	case http.MethodPost:
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, false, fmt.Errorf("bad JSON body: %v", err)
		}
		return req.Nodes, req.Logits, nil
	default:
		return nil, false, fmt.Errorf("method %s not allowed", r.Method)
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	// An inbound traceparent continues the caller's trace; a malformed or
	// absent one mints a fresh id (ParseTraceparent's zero value). With no
	// tracer installed the span is disabled and all of this no-ops.
	tc, _ := obs.ParseTraceparent(r.Header.Get("Traceparent"))
	sp := obs.StartRequest("serve.request", tc)
	defer sp.End()
	if sp.Active() {
		w.Header().Set("Traceparent", obs.FormatTraceparent(sp.TraceID(), sp.SpanID()))
	}
	status := s.predict(obs.ContextWithSpan(r.Context(), &sp), w, r, &sp)
	if s.log != nil {
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "predict",
			slog.String("method", r.Method),
			slog.Int("status", status),
			slog.Duration("dur", time.Since(start)),
			obs.SpanAttr(&sp),
		)
	}
}

// predict is handlePredict's body, split out so the handler can log the
// response status it returns.
func (s *Server) predict(ctx context.Context, w http.ResponseWriter, r *http.Request, sp *obs.Span) int {
	nodes, wantLogits, err := parseNodes(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return http.StatusBadRequest
	}
	sp.SetCount(int64(len(nodes)))
	pred, err := s.eng.Predict(ctx, nodes)
	if err != nil {
		var status int
		switch {
		case errors.Is(err, ErrNoModel), errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(err, ErrBadNode):
			status = http.StatusBadRequest
		default:
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return status
	}
	resp := predictResponse{
		Model:       pred.Model,
		Generation:  pred.Generation,
		Nodes:       pred.Nodes,
		Predictions: pred.Predictions,
	}
	if wantLogits {
		resp.Logits = pred.Logits
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.eng.Health()
	if h.Status == "unavailable" {
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	// "degraded" still answers 200: the model is serving, the burn-rate
	// trend is the signal, and the status field carries it.
	writeJSON(w, http.StatusOK, h)
}

// Stats is the /stats payload: model info plus engine counters and
// request-latency quantiles in milliseconds.
type Stats struct {
	Info        *Info   `json:"info,omitempty"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"request_errors"`
	Failed      int64   `json:"requests_failed"`
	Batches     int64   `json:"batches"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Swaps       int64   `json:"swaps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Requests:    e.mRequests.Value(),
		Errors:      e.mErrors.Value(),
		Failed:      e.mFailed.Value(),
		Batches:     e.mBatches.Value(),
		CacheHits:   e.mCacheHits.Value(),
		CacheMisses: e.mCacheMiss.Value(),
		Swaps:       e.mSwaps.Value(),
		P50Ms:       e.hLatency.Quantile(0.5) * 1e3,
		P99Ms:       e.hLatency.Quantile(0.99) * 1e3,
		MaxMs:       e.hLatency.Max() * 1e3,
	}
	if info, ok := e.Current(); ok {
		st.Info = &info
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

// swapRequest is the POST /admin/swap body.
type swapRequest struct {
	Source string `json:"source"`
}

// swapResponse reports the installed generation.
type swapResponse struct {
	Model       string `json:"model"`
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	Source      string `json:"source"`
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if s.loader == nil {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("no snapshot loader configured"))
		return
	}
	var req swapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %v", err))
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing source"))
		return
	}
	m, info, err := s.loader(req.Source)
	if err != nil {
		switch {
		case errors.Is(err, ckpt.ErrFingerprint):
			// The snapshot belongs to a different run configuration: the
			// currently served model keeps serving, untouched.
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, os.ErrNotExist):
			writeError(w, http.StatusNotFound, err)
		default:
			writeError(w, http.StatusUnprocessableEntity, err)
		}
		return
	}
	gen := s.eng.Swap(m, info)
	writeJSON(w, http.StatusOK, swapResponse{
		Model:       m.Name(),
		Generation:  gen,
		Fingerprint: fmt.Sprintf("%016x", info.Fingerprint),
		Source:      req.Source,
	})
}
