package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"scalegnn/internal/ckpt"
)

// Loader materializes a Model from a source string (a snapshot path or
// checkpoint directory) for /admin/swap. It returns the model and its
// provenance; an error wrapping ckpt.ErrFingerprint means the snapshot
// belongs to a different run configuration and the swap is rejected with
// 409 Conflict.
type Loader func(source string) (Model, SwapInfo, error)

// Server is the HTTP front end over an Engine:
//
//	GET/POST /predict     — class predictions (and logits) for node ids
//	GET      /healthz     — 200 + model info once a model is loaded
//	GET      /stats       — engine counters and latency quantiles
//	POST     /admin/swap  — hot-swap the model from a new snapshot
type Server struct {
	eng    *Engine
	loader Loader
	srv    *http.Server
	ln     net.Listener
}

// NewServer wires the handlers. loader may be nil, which disables
// /admin/swap (501).
func NewServer(eng *Engine, loader Loader) *Server {
	s := &Server{eng: eng, loader: loader}
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/admin/swap", s.handleSwap)
	s.srv = &http.Server{
		Handler: mux,
		// A stalled client must not wedge a serving thread; predictions are
		// small, so unlike the obs debug listener nothing here streams.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return s
}

// Start binds addr (":0" picks a free port) and serves until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	//lint:ignore naked-go HTTP accept loop, not data-parallel work; lifetime bounded by Close
	go func() {
		// Serve returns ErrServerClosed on Close; anything else means the
		// listener died out from under us.
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "serve: http server: %v\n", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and tears the listener down. The engine is owned
// by the caller and is not closed here.
func (s *Server) Close() error { return s.srv.Close() }

// predictRequest is the POST /predict body.
type predictRequest struct {
	Nodes  []int `json:"nodes"`
	Logits bool  `json:"logits"`
}

// predictResponse is the /predict reply.
type predictResponse struct {
	Model       string      `json:"model"`
	Generation  uint64      `json:"generation"`
	Nodes       []int       `json:"nodes"`
	Predictions []int       `json:"predictions"`
	Logits      [][]float64 `json:"logits,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// An encode failure here means the client hung up mid-response; there
	// is no channel left to report it on.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// parseNodes reads node ids from ?node=/?nodes= (GET) or the JSON body
// (POST).
func parseNodes(r *http.Request) ([]int, bool, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		raw := q.Get("nodes")
		if raw == "" {
			raw = q.Get("node")
		}
		if raw == "" {
			return nil, false, fmt.Errorf("missing ?node= or ?nodes=")
		}
		parts := strings.Split(raw, ",")
		nodes := make([]int, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, false, fmt.Errorf("bad node id %q", p)
			}
			nodes = append(nodes, v)
		}
		wantLogits := q.Get("logits") == "1" || q.Get("logits") == "true"
		return nodes, wantLogits, nil
	case http.MethodPost:
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, false, fmt.Errorf("bad JSON body: %v", err)
		}
		return req.Nodes, req.Logits, nil
	default:
		return nil, false, fmt.Errorf("method %s not allowed", r.Method)
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	nodes, wantLogits, err := parseNodes(r)
	if err != nil {
		status := http.StatusBadRequest
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			status = http.StatusMethodNotAllowed
		}
		writeError(w, status, err)
		return
	}
	pred, err := s.eng.Predict(r.Context(), nodes)
	if err != nil {
		switch {
		case errors.Is(err, ErrNoModel), errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrBadNode):
			writeError(w, http.StatusBadRequest, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	resp := predictResponse{
		Model:       pred.Model,
		Generation:  pred.Generation,
		Nodes:       pred.Nodes,
		Predictions: pred.Predictions,
	}
	if wantLogits {
		resp.Logits = pred.Logits
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	info, ok := s.eng.Current()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, ErrNoModel)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// Stats is the /stats payload: model info plus engine counters and
// request-latency quantiles in milliseconds.
type Stats struct {
	Info        *Info   `json:"info,omitempty"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"request_errors"`
	Batches     int64   `json:"batches"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Swaps       int64   `json:"swaps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Requests:    e.mRequests.Value(),
		Errors:      e.mErrors.Value(),
		Batches:     e.mBatches.Value(),
		CacheHits:   e.mCacheHits.Value(),
		CacheMisses: e.mCacheMiss.Value(),
		Swaps:       e.mSwaps.Value(),
		P50Ms:       e.hLatency.Quantile(0.5) * 1e3,
		P99Ms:       e.hLatency.Quantile(0.99) * 1e3,
		MaxMs:       e.hLatency.Max() * 1e3,
	}
	if info, ok := e.Current(); ok {
		st.Info = &info
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

// swapRequest is the POST /admin/swap body.
type swapRequest struct {
	Source string `json:"source"`
}

// swapResponse reports the installed generation.
type swapResponse struct {
	Model       string `json:"model"`
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	Source      string `json:"source"`
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	if s.loader == nil {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("no snapshot loader configured"))
		return
	}
	var req swapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %v", err))
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing source"))
		return
	}
	m, info, err := s.loader(req.Source)
	if err != nil {
		switch {
		case errors.Is(err, ckpt.ErrFingerprint):
			// The snapshot belongs to a different run configuration: the
			// currently served model keeps serving, untouched.
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, os.ErrNotExist):
			writeError(w, http.StatusNotFound, err)
		default:
			writeError(w, http.StatusUnprocessableEntity, err)
		}
		return
	}
	gen := s.eng.Swap(m, info)
	writeJSON(w, http.StatusOK, swapResponse{
		Model:       m.Name(),
		Generation:  gen,
		Fingerprint: fmt.Sprintf("%016x", info.Fingerprint),
		Source:      req.Source,
	})
}
