package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"scalegnn/internal/ckpt"
	"scalegnn/internal/dataset"
	"scalegnn/internal/models"
	"scalegnn/internal/tensor"
)

func startServer(t *testing.T, e *Engine, loader Loader) *Server {
	t.Helper()
	s := NewServer(e, loader)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("body close: %v", err)
		}
	}()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	} else if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("body close: %v", err)
		}
	}()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	} else if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// TestHTTPServesOfflinePredictions is the end-to-end parity check: a
// trained SGC served over HTTP must answer, node for node, exactly what
// the offline Predict path computed — predictions equal and logits
// bitwise-equal (encoding/json round-trips float64 exactly).
func TestHTTPServesOfflinePredictions(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Nodes: 200, Classes: 3, AvgDegree: 6, Homophily: 0.8,
		FeatureDim: 10, NoiseStd: 1.0, TrainFrac: 0.5, ValFrac: 0.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := models.DefaultTrainConfig()
	cfg.Epochs, cfg.Patience, cfg.BatchSize, cfg.Hidden, cfg.Seed = 5, 0, 64, 8, 7
	m, err := models.NewSGC(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(ds, cfg); err != nil {
		t.Fatal(err)
	}
	want, err := m.Predict(ds)
	if err != nil {
		t.Fatal(err)
	}
	wantLogits := tensor.New(ds.G.N, ds.NumClasses)
	idx := make([]int, ds.G.N)
	for i := range idx {
		idx[i] = i
	}
	if err := m.Score(idx, wantLogits); err != nil {
		t.Fatal(err)
	}

	// Cache covers the whole graph so the second sweep is all hits (a
	// smaller LRU under a sequential scan would always miss).
	e := NewEngine(Config{Window: 100 * time.Microsecond, CacheSize: ds.G.N})
	defer e.Close()
	e.Swap(m, SwapInfo{Source: "fit"})
	s := startServer(t, e, nil)
	base := "http://" + s.Addr()

	var health Info
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health.Model != m.Name() || health.Nodes != ds.G.N {
		t.Fatalf("healthz = %+v", health)
	}

	// Every node, in odd-sized chunks, with logits — twice, so the second
	// sweep also exercises the cache path.
	for sweep := 0; sweep < 2; sweep++ {
		for lo := 0; lo < ds.G.N; lo += 7 {
			hi := lo + 7
			if hi > ds.G.N {
				hi = ds.G.N
			}
			var resp predictResponse
			code := postJSON(t, base+"/predict", predictRequest{Nodes: idx[lo:hi], Logits: true}, &resp)
			if code != http.StatusOK {
				t.Fatalf("predict [%d,%d): status %d", lo, hi, code)
			}
			for i, node := range idx[lo:hi] {
				if resp.Predictions[i] != want[node] {
					t.Fatalf("sweep %d node %d: served %d, offline %d", sweep, node, resp.Predictions[i], want[node])
				}
				wantRow := wantLogits.Row(node)
				for j, v := range resp.Logits[i] {
					if v != wantRow[j] {
						t.Fatalf("sweep %d node %d logit %d: served %v, offline %v", sweep, node, j, v, wantRow[j])
					}
				}
			}
		}
	}

	// GET with comma-separated ids hits the same path.
	var resp predictResponse
	if code := getJSON(t, base+"/predict?nodes=0,1,2", &resp); code != http.StatusOK {
		t.Fatalf("GET predict status %d", code)
	}
	for i := 0; i < 3; i++ {
		if resp.Predictions[i] != want[i] {
			t.Fatalf("GET node %d: served %d, offline %d", i, resp.Predictions[i], want[i])
		}
	}

	// Error surface: bad ids and bad bodies are 400s, not 500s.
	if code := getJSON(t, base+"/predict?nodes=9999", nil); code != http.StatusBadRequest {
		t.Fatalf("out-of-range node: status %d, want 400", code)
	}
	if code := getJSON(t, base+"/predict?nodes=abc", nil); code != http.StatusBadRequest {
		t.Fatalf("unparsable node: status %d, want 400", code)
	}
	if code := getJSON(t, base+"/predict", nil); code != http.StatusBadRequest {
		t.Fatalf("missing nodes: status %d, want 400", code)
	}

	var st Stats
	if code := getJSON(t, base+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Requests == 0 || st.CacheHits == 0 || st.Info == nil {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHTTPSwap exercises the hot-swap admin surface: a successful swap
// changes what /predict answers; a fingerprint-mismatched snapshot is
// rejected with 409 and the old model keeps serving.
func TestHTTPSwap(t *testing.T) {
	loader := func(source string) (Model, SwapInfo, error) {
		switch source {
		case "b":
			return newFake("B", 1), SwapInfo{Fingerprint: 0xb, Source: source}, nil
		case "stale":
			return nil, SwapInfo{}, fmt.Errorf("loader: %w: snapshot 00aa, run 00bb", ckpt.ErrFingerprint)
		case "missing":
			return nil, SwapInfo{}, fmt.Errorf("loader: %w", os.ErrNotExist)
		default:
			return nil, SwapInfo{}, fmt.Errorf("loader: unreadable %q", source)
		}
	}
	e := NewEngine(Config{})
	defer e.Close()
	e.Swap(newFake("A", 0), SwapInfo{Fingerprint: 0xa, Source: "a"})
	s := startServer(t, e, loader)
	base := "http://" + s.Addr()

	var sw swapResponse
	if code := postJSON(t, base+"/admin/swap", swapRequest{Source: "b"}, &sw); code != http.StatusOK {
		t.Fatalf("swap status %d", code)
	}
	if sw.Model != "B" || sw.Generation != 2 {
		t.Fatalf("swap response %+v", sw)
	}
	var resp predictResponse
	if code := getJSON(t, base+"/predict?node=1", &resp); code != http.StatusOK || resp.Model != "B" {
		t.Fatalf("post-swap predict: status %d model %q", code, resp.Model)
	}

	// Incompatible snapshot: 409 Conflict, and B keeps serving.
	var failure errorResponse
	if code := postJSON(t, base+"/admin/swap", swapRequest{Source: "stale"}, &failure); code != http.StatusConflict {
		t.Fatalf("stale swap status %d, want 409", code)
	}
	if failure.Error == "" {
		t.Fatal("409 without an error body")
	}
	if code := postJSON(t, base+"/admin/swap", swapRequest{Source: "missing"}, nil); code != http.StatusNotFound {
		t.Fatal("missing snapshot should 404")
	}
	if code := postJSON(t, base+"/admin/swap", swapRequest{}, nil); code != http.StatusBadRequest {
		t.Fatal("empty source should 400")
	}
	if code := getJSON(t, base+"/admin/swap", nil); code != http.StatusMethodNotAllowed {
		t.Fatal("GET swap should 405")
	}
	if code := getJSON(t, base+"/predict?node=1", &resp); code != http.StatusOK || resp.Model != "B" {
		t.Fatalf("rejected swaps disturbed serving: status %d model %q", code, resp.Model)
	}
	if st := e.Stats(); st.Swaps != 2 {
		t.Fatalf("swap counter = %d, want 2 (rejected swaps must not count)", st.Swaps)
	}

	// No loader configured → 501.
	e2 := NewEngine(Config{})
	defer e2.Close()
	e2.Swap(newFake("A", 0), SwapInfo{})
	s2 := startServer(t, e2, nil)
	if code := postJSON(t, "http://"+s2.Addr()+"/admin/swap", swapRequest{Source: "b"}, nil); code != http.StatusNotImplemented {
		t.Fatal("swap without loader should 501")
	}
}

// TestLoadGen runs the closed-loop generator against a live server and
// checks the BENCH_serve.json it feeds.
func TestLoadGen(t *testing.T) {
	e := NewEngine(Config{Window: 100 * time.Microsecond, CacheSize: 256})
	defer e.Close()
	e.Swap(newFake("A", 0), SwapInfo{Source: "test"})
	s := startServer(t, e, nil)

	res, err := RunLoad(LoadConfig{
		BaseURL:     "http://" + s.Addr(),
		Nodes:       1000,
		Batch:       2,
		Concurrency: 4,
		Duration:    150 * time.Millisecond,
		SLO:         250 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Model != "A" || res.QPS <= 0 || res.P99Ms < res.P50Ms || res.MaxMs < res.P99Ms {
		t.Fatalf("implausible result = %+v", res)
	}
	if !res.SLOMet {
		t.Logf("warning: p99 %.2fms over the %.0fms test SLO (loaded CI machine?)", res.P99Ms, res.SLOMs)
	}

	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := WriteBenchJSON(path, []*LoadResult{res}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty BENCH_serve.json")
	}
	var rep BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Bench != "serve" || len(rep.Results) != 1 || rep.Results[0].Requests != res.Requests {
		t.Fatalf("report = %+v", rep)
	}

	// Misconfiguration errors.
	if _, err := RunLoad(LoadConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := RunLoad(LoadConfig{BaseURL: "http://127.0.0.1:1", Nodes: 10, Duration: time.Millisecond}); err == nil {
		t.Fatal("unreachable server accepted")
	}
}
