package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// LoadConfig drives RunLoad, the closed-loop HTTP load generator behind
// the serving benchmark: Concurrency workers each issue one request,
// wait for the reply, and immediately issue the next, for Duration.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Nodes bounds the sampled node id space [0, Nodes).
	Nodes int
	// Batch is how many node ids each request carries; <= 0 means 1.
	Batch int
	// Concurrency is the closed-loop worker count; <= 0 means 4.
	Concurrency int
	// Duration is how long to generate load.
	Duration time.Duration
	// SLO is the p99 latency target the result is judged against.
	SLO time.Duration
	// Seed feeds the per-worker node samplers.
	Seed uint64
}

// LoadResult is one load-generation run, shaped for BENCH_serve.json.
// Label, WindowMicros, MaxBatch, CacheSize, and CacheHitRate describe the
// engine configuration under test and are filled by the caller.
type LoadResult struct {
	Label        string  `json:"label,omitempty"`
	Model        string  `json:"model,omitempty"`
	Nodes        int     `json:"nodes"`
	Concurrency  int     `json:"concurrency"`
	BatchPerReq  int     `json:"batch_per_request"`
	WindowMicros float64 `json:"window_us"`
	MaxBatch     int     `json:"max_batch"`
	CacheSize    int     `json:"cache_size"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	DurationSec  float64 `json:"duration_sec"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	QPS          float64 `json:"qps"`
	P50Ms        float64 `json:"p50_ms"`
	P90Ms        float64 `json:"p90_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	SLOMs        float64 `json:"slo_ms"`
	SLOMet       bool    `json:"slo_met"`
}

// RunLoad hammers cfg.BaseURL/predict with uniformly random node ids and
// reports throughput and exact (not bucketed) latency percentiles.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("serve: loadgen needs a BaseURL")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("serve: loadgen needs Nodes > 0")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("serve: loadgen needs Duration > 0")
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 4
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 1
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        workers * 2,
			MaxIdleConnsPerHost: workers * 2,
		},
	}
	defer client.CloseIdleConnections()

	// Pre-flight: the server must be up and serving a model, so a result
	// never silently measures a wall of 503s.
	model, err := serverModel(client, cfg.BaseURL)
	if err != nil {
		return nil, err
	}

	type workerOut struct {
		lats []float64 // milliseconds
		errs int64
	}
	outs := make([]workerOut, workers)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:ignore naked-go closed-loop load worker; joined via WaitGroup below
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(w)))
			url := make([]byte, 0, 128)
			for time.Now().Before(deadline) {
				url = url[:0]
				url = append(url, cfg.BaseURL...)
				url = append(url, "/predict?nodes="...)
				for i := 0; i < batch; i++ {
					if i > 0 {
						url = append(url, ',')
					}
					url = appendInt(url, rng.IntN(cfg.Nodes))
				}
				t0 := time.Now()
				resp, err := client.Get(string(url))
				if err != nil {
					outs[w].errs++
					continue
				}
				// Drain so the connection can be reused.
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					outs[w].errs++
					continue
				}
				outs[w].lats = append(outs[w].lats, float64(time.Since(t0).Nanoseconds())/1e6)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []float64
	var errs int64
	for _, o := range outs {
		lats = append(lats, o.lats...)
		errs += o.errs
	}
	if len(lats) == 0 {
		return nil, fmt.Errorf("serve: loadgen got no successful responses (%d errors)", errs)
	}
	sort.Float64s(lats)
	res := &LoadResult{
		Model:       model,
		Nodes:       cfg.Nodes,
		Concurrency: workers,
		BatchPerReq: batch,
		DurationSec: elapsed.Seconds(),
		Requests:    int64(len(lats)),
		Errors:      errs,
		QPS:         float64(len(lats)) / elapsed.Seconds(),
		P50Ms:       quantileSorted(lats, 0.50),
		P90Ms:       quantileSorted(lats, 0.90),
		P99Ms:       quantileSorted(lats, 0.99),
		MaxMs:       lats[len(lats)-1],
		SLOMs:       float64(cfg.SLO.Nanoseconds()) / 1e6,
	}
	res.SLOMet = cfg.SLO <= 0 || res.P99Ms <= res.SLOMs
	return res, nil
}

// serverModel confirms /healthz answers and returns the served model name.
func serverModel(client *http.Client, base string) (string, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return "", fmt.Errorf("serve: loadgen health check: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("serve: loadgen health check: status %d", resp.StatusCode)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", fmt.Errorf("serve: loadgen health check: %w", err)
	}
	return info.Model, nil
}

// appendInt is strconv.AppendInt without the int64 conversion noise at the
// call site.
func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// quantileSorted returns the exact q-quantile of an ascending-sorted
// sample (nearest-rank).
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*q+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// BenchReport is the BENCH_serve.json document.
type BenchReport struct {
	Bench   string        `json:"bench"`
	Results []*LoadResult `json:"results"`
}

// WriteBenchJSON writes the machine-readable serving benchmark report.
func WriteBenchJSON(path string, results []*LoadResult) error {
	data, err := json.MarshalIndent(BenchReport{Bench: "serve", Results: results}, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: bench report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("serve: bench report: %w", err)
	}
	return nil
}
