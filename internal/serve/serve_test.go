package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalegnn/internal/tensor"
)

// fakeModel answers a fixed class for every node, so a response's
// provenance is visible in its predictions: a response mixing classes
// would prove two models answered one request.
type fakeModel struct {
	name    string
	nodes   int
	classes int
	class   int // every node predicts this class

	scoreCalls atomic.Int64
	rowsScored atomic.Int64
}

func (f *fakeModel) Name() string { return f.name }
func (f *fakeModel) Nodes() int   { return f.nodes }
func (f *fakeModel) Classes() int { return f.classes }

func (f *fakeModel) Score(idx []int, out *tensor.Matrix) error {
	f.scoreCalls.Add(1)
	f.rowsScored.Add(int64(len(idx)))
	for i := range idx {
		row := out.Row(i)
		for j := range row {
			row[j] = 0
		}
		row[f.class] = 1
	}
	return nil
}

func newFake(name string, class int) *fakeModel {
	return &fakeModel{name: name, nodes: 1000, classes: 3, class: class}
}

func TestEngineRejects(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	ctx := context.Background()

	if _, err := e.Predict(ctx, []int{0}); !errors.Is(err, ErrNoModel) {
		t.Fatalf("predict before swap: err = %v, want ErrNoModel", err)
	}
	if _, ok := e.Current(); ok {
		t.Fatal("Current reported a model before any Swap")
	}

	e.Swap(newFake("A", 0), SwapInfo{Source: "test"})
	if _, err := e.Predict(ctx, nil); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := e.Predict(ctx, []int{-1}); !errors.Is(err, ErrBadNode) {
		t.Fatalf("negative node: err = %v, want ErrBadNode", err)
	}
	if _, err := e.Predict(ctx, []int{1000}); !errors.Is(err, ErrBadNode) {
		t.Fatalf("out-of-range node: err = %v, want ErrBadNode", err)
	}

	ctx2, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.Predict(ctx2, []int{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context: err = %v, want context.Canceled", err)
	}

	e.Close()
	e.Close() // idempotent
	if _, err := e.Predict(ctx, []int{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("predict after close: err = %v, want ErrClosed", err)
	}
}

func TestEnginePredicts(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	m := newFake("A", 2)
	gen := e.Swap(m, SwapInfo{Source: "test"})

	p, err := e.Predict(context.Background(), []int{5, 7, 5})
	if err != nil {
		t.Fatal(err)
	}
	if p.Model != "A" || p.Generation != gen {
		t.Fatalf("got model %q gen %d, want A gen %d", p.Model, p.Generation, gen)
	}
	for i, c := range p.Predictions {
		if c != 2 {
			t.Fatalf("prediction[%d] = %d, want 2", i, c)
		}
	}
	for _, l := range p.Logits {
		if len(l) != 3 || l[2] != 1 {
			t.Fatalf("unexpected logits %v", l)
		}
	}
	info, ok := e.Current()
	if !ok || info.Model != "A" || info.Nodes != 1000 || info.Classes != 3 {
		t.Fatalf("Current = %+v, ok=%v", info, ok)
	}
}

// TestEngineCoalesces proves the batching window merges concurrent
// single-node requests into far fewer model forwards.
func TestEngineCoalesces(t *testing.T) {
	e := NewEngine(Config{Window: 20 * time.Millisecond})
	defer e.Close()
	m := newFake("A", 0)
	e.Swap(m, SwapInfo{Source: "test"})

	const reqs = 24
	var wg sync.WaitGroup
	errs := make([]error, reqs)
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		//lint:ignore naked-go concurrent request clients under test; joined via WaitGroup
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Predict(context.Background(), []int{i})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if calls := m.scoreCalls.Load(); calls >= reqs {
		t.Fatalf("no coalescing: %d Score calls for %d requests", calls, reqs)
	}
	if rows := m.rowsScored.Load(); rows != reqs {
		t.Fatalf("scored %d rows, want %d", rows, reqs)
	}
}

// TestEngineMaxBatch proves one oversized request is still scored whole
// while coalescing respects the row cap across requests.
func TestEngineMaxBatch(t *testing.T) {
	e := NewEngine(Config{MaxBatch: 4})
	defer e.Close()
	m := newFake("A", 1)
	e.Swap(m, SwapInfo{Source: "test"})

	nodes := make([]int, 10)
	for i := range nodes {
		nodes[i] = i
	}
	p, err := e.Predict(context.Background(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Predictions) != 10 {
		t.Fatalf("got %d predictions, want 10", len(p.Predictions))
	}
}

func TestEngineCache(t *testing.T) {
	e := NewEngine(Config{CacheSize: 8})
	defer e.Close()
	m := newFake("A", 1)
	e.Swap(m, SwapInfo{Source: "test"})

	ctx := context.Background()
	if _, err := e.Predict(ctx, []int{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(ctx, []int{3}); err != nil {
		t.Fatal(err)
	}
	if calls := m.scoreCalls.Load(); calls != 1 {
		t.Fatalf("cached node recomputed: %d Score calls, want 1", calls)
	}
	st := e.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.Requests != 2 || st.P99Ms <= 0 {
		t.Fatalf("stats = %+v", st)
	}

	// A swap installs a cold cache: the same node misses again.
	e.Swap(newFake("B", 2), SwapInfo{Source: "test"})
	p, err := e.Predict(ctx, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Predictions[0] != 2 {
		t.Fatalf("post-swap prediction = %d, want 2 (stale cache?)", p.Predictions[0])
	}
}

func TestLRU(t *testing.T) {
	c := newLRU(2)
	c.add(1, []float64{1})
	c.add(2, []float64{2})
	if _, ok := c.get(1); !ok { // refresh 1 → 2 becomes LRU
		t.Fatal("miss on cached node 1")
	}
	c.add(3, []float64{3})
	if _, ok := c.get(2); ok {
		t.Fatal("node 2 should have been evicted")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("recently-used node 1 evicted")
	}
	if l, ok := c.get(3); !ok || l[0] != 3 {
		t.Fatalf("node 3: %v, %v", l, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	c.add(3, []float64{33}) // refresh in place
	if l, _ := c.get(3); l[0] != 33 {
		t.Fatalf("refresh did not replace logits: %v", l)
	}

	var nilCache *lruCache = newLRU(0)
	if nilCache != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	nilCache.add(1, []float64{1})
	if _, ok := nilCache.get(1); ok {
		t.Fatal("nil cache returned a hit")
	}
	if nilCache.len() != 0 {
		t.Fatal("nil cache has nonzero len")
	}
}

// TestHotSwapConsistency is the torture test behind the zero-downtime
// claim: readers hammer Predict while the main goroutine swaps between
// two models; every response must be answered wholly by one model —
// uniform predictions, and a Model/Generation pair that matches them.
// Run with -race: it also proves the swap path is data-race-free.
func TestHotSwapConsistency(t *testing.T) {
	e := NewEngine(Config{Window: 100 * time.Microsecond, CacheSize: 64})
	defer e.Close()

	// Swaps alternate A, B, A, B, … so generation parity determines the
	// model: odd generations are A, even are B. That lets readers verify
	// Model/Generation pairing without racing the swapper.
	swap := func(name string, class int) {
		e.Swap(newFake(name, class), SwapInfo{Source: "test"})
	}
	swap("A", 0)

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		//lint:ignore naked-go reader goroutines racing the swapper under test; joined via WaitGroup
		go func(r int) {
			defer wg.Done()
			nodes := []int{r, r + 100, r + 200, r + 300}
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := e.Predict(context.Background(), nodes)
				if err != nil {
					fail <- "predict: " + err.Error()
					return
				}
				want := 0
				if p.Model == "B" {
					want = 1
				}
				for _, c := range p.Predictions {
					if c != want {
						fail <- "mixed-generation response: model " + p.Model
						return
					}
				}
				expect := "A"
				if p.Generation%2 == 0 {
					expect = "B"
				}
				if p.Model != expect {
					fail <- "generation does not match model " + p.Model
					return
				}
			}
		}(r)
	}

	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			swap("B", 1)
		} else {
			swap("A", 0)
		}
		time.Sleep(500 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if st := e.Stats(); st.Swaps != 51 {
		t.Fatalf("swap counter = %d, want 51", st.Swaps)
	}
}

// TestEngineScoreError proves a model failure reaches every request in
// the batch rather than hanging or crashing the dispatcher.
func TestEngineScoreError(t *testing.T) {
	e := NewEngine(Config{})
	defer e.Close()
	e.Swap(&errModel{}, SwapInfo{Source: "test"})
	if _, err := e.Predict(context.Background(), []int{1}); err == nil {
		t.Fatal("model error swallowed")
	}
	// The dispatcher survives: a healthy model serves afterwards.
	e.Swap(newFake("A", 0), SwapInfo{Source: "test"})
	if _, err := e.Predict(context.Background(), []int{1}); err != nil {
		t.Fatalf("engine wedged after score error: %v", err)
	}
	if st := e.Stats(); st.Errors != 1 {
		t.Fatalf("error counter = %d, want 1", st.Errors)
	}
}

type errModel struct{}

func (errModel) Name() string { return "err" }
func (errModel) Nodes() int   { return 10 }
func (errModel) Classes() int { return 2 }
func (errModel) Score([]int, *tensor.Matrix) error {
	return errors.New("boom")
}
