package distnet

import (
	"fmt"

	"scalegnn/internal/graph"
	"scalegnn/internal/partition"
	"scalegnn/internal/tensor"
)

// BoundaryPlan is the communication plan for partitioned-activation
// propagation: for each peer, exactly the owned rows that peer's nodes
// aggregate over (its in-boundary), rather than the full allgather the
// lockstep hook uses. This is the DistDGL-style halo exchange — wire volume
// scales with the partition's edge cut, not with N×features.
type BoundaryPlan struct {
	Owned  []int32           // rows this shard computes
	SendTo map[int][]int32   // peer id -> owned rows that peer needs
	shard  int
	k      int
}

// PlanBoundary builds the halo-exchange plan for this shard: peer p needs
// our row v exactly when some node w owned by p has v among its CSR
// neighbors (w's SpMM row reads x[v]).
func PlanBoundary(g *graph.CSR, a *partition.Assignment, shard int) (*BoundaryPlan, error) {
	if len(a.Parts) != g.N {
		return nil, fmt.Errorf("distnet: assignment covers %d of %d nodes", len(a.Parts), g.N)
	}
	if shard < 0 || shard >= a.K {
		return nil, fmt.Errorf("distnet: shard %d out of range [0,%d)", shard, a.K)
	}
	p := &BoundaryPlan{SendTo: make(map[int][]int32), shard: shard, k: a.K}
	seen := make(map[int64]struct{})
	for w := 0; w < g.N; w++ {
		pw := a.Parts[w]
		if pw == shard {
			p.Owned = append(p.Owned, int32(w))
			continue
		}
		for _, v := range g.Neighbors(w) {
			if a.Parts[v] != shard {
				continue
			}
			key := int64(pw)<<32 | int64(v)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			p.SendTo[pw] = append(p.SendTo[pw], v)
		}
	}
	return p, nil
}

// Propagate computes P^hops * X across the cluster with partitioned
// activations: each hop, shards exchange only boundary rows (the plan's
// halo), compute their owned rows of the next activation via
// ApplyRowsInto, and a final allgather assembles the full matrix. It is
// the wire-protocol counterpart of distsim.Exchange — with a NormNone
// operator without self-loops and hops == 1 the result is bitwise
// identical to distsim's in-process reference (and to the sequential
// aggregation both are tested against).
func Propagate(c *Cluster, op *graph.Operator, plan *BoundaryPlan, x *tensor.Matrix, hops int) (*tensor.Matrix, error) {
	if plan.k != c.N() || plan.shard != c.Shard() {
		return nil, fmt.Errorf("distnet: plan is for shard %d of %d, cluster is shard %d of %d",
			plan.shard, plan.k, c.Shard(), c.N())
	}
	if x.Rows != op.G.N {
		return nil, fmt.Errorf("distnet: features have %d rows for %d nodes", x.Rows, op.G.N)
	}
	if hops < 1 {
		return nil, fmt.Errorf("distnet: hops %d < 1", hops)
	}
	cur := x.Clone()
	next := tensor.New(x.Rows, x.Cols)
	for h := 0; h < hops; h++ {
		if c.N() > 1 {
			out := make(map[int]*RowBlock, c.N()-1)
			for id, rows := range plan.SendTo {
				out[id] = gatherRows(cur, rows)
			}
			recv, err := c.Exchange(fmt.Sprintf("prop.h%d", h), out)
			if err != nil {
				return nil, err
			}
			for id, b := range recv {
				if err := scatterRows(cur, b); err != nil {
					return nil, fmt.Errorf("distnet: halo rows from shard %d: %w", id, err)
				}
			}
		}
		op.ApplyRowsInto(cur, next, plan.Owned)
		cur, next = next, cur
	}
	if c.N() > 1 {
		// Final assembly: allgather the owned rows of the result.
		out := make(map[int]*RowBlock, c.N()-1)
		blk := gatherRows(cur, plan.Owned)
		for id := range c.peer {
			if c.peer[id] != nil {
				out[id] = blk
			}
		}
		recv, err := c.Exchange("prop.final", out)
		if err != nil {
			return nil, err
		}
		for id, b := range recv {
			if err := scatterRows(cur, b); err != nil {
				return nil, fmt.Errorf("distnet: final rows from shard %d: %w", id, err)
			}
		}
	}
	return cur, nil
}
