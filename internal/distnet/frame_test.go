package distnet

import (
	"errors"
	"net"
	"testing"
	"time"
)

// pipeRead feeds raw bytes through a real net.Pipe connection and returns
// readFrame's result — the full deadline-and-validation path, not just the
// decoder.
func pipeRead(t *testing.T, raw []byte) (frame, error) {
	t.Helper()
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	errc := make(chan error, 1)
	//lint:ignore naked-go test writer feeding one frame into a pipe, joined via errc
	go func() {
		_, err := client.Write(raw)
		_ = client.Close() // EOF after the payload, like a torn sender
		errc <- err
	}()
	f, err := readFrame(server, 500*time.Millisecond)
	_ = server.Close() // unblock the writer if the frame was rejected early
	<-errc
	return f, err
}

func TestFrameRoundTrip(t *testing.T) {
	blk := &RowBlock{IDs: []int32{3, 9}, Cols: 2, F64: []float64{1.5, -2.25, 0, 3e-300}}
	raw := encodeRows(1, 42, 7, "a3", blk)
	f, err := pipeRead(t, raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != typeRows || f.from != 1 {
		t.Fatalf("frame type=%d from=%d", f.typ, f.from)
	}
	m, err := decodeRows(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.seq != 42 || m.epoch != 7 || m.site != "a3" {
		t.Fatalf("seq=%d epoch=%d site=%q", m.seq, m.epoch, m.site)
	}
	if len(m.block.IDs) != 2 || m.block.IDs[1] != 9 {
		t.Fatalf("ids = %v", m.block.IDs)
	}
	for i, v := range blk.F64 {
		if m.block.F64[i] != v {
			t.Fatalf("value[%d] = %v, want %v (not bitwise)", i, m.block.F64[i], v)
		}
	}
}

func TestFrameRoundTripFloat32(t *testing.T) {
	blk := &RowBlock{IDs: []int32{0}, Cols: 3, F32: []float32{1.5, -0.25, 7}}
	f, err := pipeRead(t, encodeRows(0, 1, 0, "s", blk))
	if err != nil {
		t.Fatal(err)
	}
	m, err := decodeRows(f)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range blk.F32 {
		if m.block.F32[i] != v {
			t.Fatalf("value[%d] = %v, want %v", i, m.block.F32[i], v)
		}
	}
}

// TestFrameCorruptionRejected: every class of wire damage — flipped payload
// bits, a flipped checksum, bad magic, a truncated (torn) frame, an absurd
// length — must be rejected as corruption, never decoded.
func TestFrameCorruptionRejected(t *testing.T) {
	good := encodeRows(1, 3, 0, "a0", &RowBlock{IDs: []int32{5}, Cols: 1, F64: []float64{42}})
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"payload bit flip", func(b []byte) []byte { b[headerLen+2] ^= 0x40; return b }},
		{"checksum flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"torn frame", func(b []byte) []byte { return b[:len(b)/2] }},
		{"torn header", func(b []byte) []byte { return b[:6] }},
		{"length overflow", func(b []byte) []byte {
			b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
			return b
		}},
	}
	for _, tc := range cases {
		raw := tc.mut(append([]byte(nil), good...))
		if _, err := pipeRead(t, raw); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	// The checksum classes specifically must identify as corruption (the
	// read loop counts them); a clean short read surfaces as EOF instead.
	for _, name := range []string{"payload bit flip", "checksum flip", "bad magic"} {
		for _, tc := range cases {
			if tc.name != name {
				continue
			}
			_, err := pipeRead(t, tc.mut(append([]byte(nil), good...)))
			if !errors.Is(err, errCorrupt) {
				t.Fatalf("%s: error %v is not errCorrupt", name, err)
			}
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	f, err := pipeRead(t, encodeHello(2, 4, 0xdeadbeefcafe))
	if err != nil {
		t.Fatal(err)
	}
	n, fp, err := decodeHello(f)
	if err != nil || f.from != 2 || n != 4 || fp != 0xdeadbeefcafe {
		t.Fatalf("hello: from=%d n=%d fp=%x err=%v", f.from, n, fp, err)
	}
}

func TestAuxCursorRoundTrip(t *testing.T) {
	c := &Cluster{cfg: Config{N: 2}}
	c.seq, c.epoch, c.siteIdx = 77, 12, 3
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	d := &Cluster{cfg: Config{N: 2}}
	if err := d.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if d.seq != 77 || d.epoch != 12 || d.siteIdx != 3 {
		t.Fatalf("cursor = (%d,%d,%d)", d.seq, d.epoch, d.siteIdx)
	}
	if err := d.UnmarshalBinary(blob[:10]); err == nil {
		t.Fatal("short aux blob accepted")
	}
}
