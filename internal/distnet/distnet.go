// Package distnet is the multi-process distributed training runtime: a
// length-prefixed, CRC-framed boundary-exchange protocol over TCP or unix
// sockets with per-message deadlines, heartbeat-based failure detection,
// bounded exponential-backoff reconnect, and replay-based recovery.
//
// N shards (one process each) form a full mesh — the higher-numbered shard
// of every pair dials the lower — and advance through a totally ordered
// sequence of exchange rounds. Each round, every shard appends its outgoing
// rows to a per-peer send log and waits for the matching round from every
// peer. Senders are demand-gated: a shard streams to a peer only after
// receiving that peer's resumeAt{seq} control frame, so a process that was
// SIGKILLed and resumed from a checkpoint simply asks each peer to replay
// from the round its snapshot recorded, while its peers' requests prevent
// it from re-sending rounds they already consumed. The send log is retained
// by epoch (Config.RetainEpochs) so replay always covers a resume from the
// newest checkpoint boundary.
//
// Synchronous mode (MaxStaleness == 0) waits up to PeerTimeout for every
// round and fails loudly after that — rows are never substituted, so the
// assembled matrices (and the final model) are bitwise identical to a
// single-process run. Stale-bounded mode (MaxStaleness > 0) waits only
// ExchangeTimeout, then falls back to the newest rows previously received
// for the same exchange site if they are at most MaxStaleness epochs old,
// counting a stale hit; past the bound it keeps waiting to PeerTimeout and
// then fails loudly.
//
// Every reconnect, replay, stale hit, and corrupt frame is counted in the
// obs registry (EnableMetrics) and surfaced in Stats; exchange rounds emit
// spans carrying the round seq as a span link, so two shards' trace
// timelines correlate round-by-round.
package distnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scalegnn/internal/obs"
)

// Defaults for the zero-valued Config knobs.
const (
	DefaultPeerTimeout     = 60 * time.Second
	DefaultExchangeTimeout = 500 * time.Millisecond
	DefaultHeartbeatEvery  = 250 * time.Millisecond
	DefaultFailAfter       = 2 * time.Second
	DefaultDialBackoff     = 50 * time.Millisecond
	DefaultMaxBackoff      = 2 * time.Second
	DefaultWriteTimeout    = 10 * time.Second
	DefaultRetainEpochs    = 2

	// maxInbox bounds the out-of-order rounds buffered per peer; in
	// lockstep operation the inbox holds at most a handful of entries, so
	// hitting the bound means a protocol bug, not load.
	maxInbox = 1024
)

// Config describes one shard's view of the cluster.
type Config struct {
	Shard int      // this process's shard id, 0-based
	N     int      // cluster size
	Addrs []string // len N; Addrs[i] is shard i's listen address ("unix:/path" or "tcp:host:port")

	// Fingerprint identifies the run; the handshake rejects peers with a
	// different one (a shard from another run must not feed us rows).
	Fingerprint uint64

	// MaxStaleness is the graceful-degradation bound: 0 means strict
	// synchronous exchange (bitwise parity), k > 0 permits substituting
	// rows up to k epochs old when a peer lags past ExchangeTimeout.
	MaxStaleness int

	ExchangeTimeout time.Duration // stale-fallback wait (MaxStaleness > 0 only)
	PeerTimeout     time.Duration // hard bound before a round fails loudly
	HeartbeatEvery  time.Duration // idle-connection heartbeat cadence
	FailAfter       time.Duration // read silence before a connection is declared dead
	DialBackoff     time.Duration // initial reconnect backoff (doubles per failure)
	MaxBackoff      time.Duration // reconnect backoff cap
	WriteTimeout    time.Duration // per-frame write deadline

	// RetainEpochs keeps send-log entries for rounds at most this many
	// epochs old, bounding replay memory while guaranteeing a peer resuming
	// from its newest checkpoint can be caught up. Set it to at least the
	// checkpoint cadence + 1.
	RetainEpochs int

	// Ctx, when non-nil, aborts blocked exchanges on cancellation.
	Ctx context.Context
}

func (c *Config) fillDefaults() {
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = DefaultPeerTimeout
	}
	if c.ExchangeTimeout <= 0 {
		c.ExchangeTimeout = DefaultExchangeTimeout
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if c.FailAfter <= 0 {
		c.FailAfter = DefaultFailAfter
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = DefaultDialBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.RetainEpochs <= 0 {
		c.RetainEpochs = DefaultRetainEpochs
	}
}

// RowBlock is a set of feature rows keyed by global node id: len(IDs) rows
// of Cols values, stored row-major in exactly one of F64/F32.
type RowBlock struct {
	IDs  []int32
	Cols int
	F64  []float64
	F32  []float32
}

// RoundError is a failed exchange round: the site and round seq, the peer
// that could not be satisfied, and why. It is the loud failure the staleness
// bound and PeerTimeout promise.
type RoundError struct {
	Site string
	Seq  uint64
	Peer int
	Why  string
	Err  error
}

func (e *RoundError) Error() string {
	msg := fmt.Sprintf("distnet: round %d (%s) failed waiting on shard %d: %s", e.Seq, e.Site, e.Peer, e.Why)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *RoundError) Unwrap() error { return e.Err }

// Cluster is one shard's runtime state: the listener, one peer state
// machine per remote shard, and the round counter.
//
// Exchange, SetEpoch, MarshalBinary, and UnmarshalBinary must all be called
// from the single training goroutine; everything else is internally
// synchronized.
type Cluster struct {
	cfg  Config
	ln   net.Listener
	peer []*peer // indexed by shard id; peer[Shard] == nil

	seq     uint64 // last assigned round seq
	epoch   int64  // current training epoch (SetEpoch)
	siteIdx int64  // per-epoch exchange-site counter (nextSite)
	started bool   // first Exchange has run

	root    obs.Span
	done    chan struct{}
	closing atomic.Bool
	wg      sync.WaitGroup

	stats clusterStats
}

// clusterStats are the cluster's own atomic counters, mirrored into the obs
// registry when EnableMetrics has bound the refs.
type clusterStats struct {
	rounds        atomic.Int64
	staleHits     atomic.Int64
	reconnects    atomic.Int64
	dialRetries   atomic.Int64
	framesCorrupt atomic.Int64
	replays       atomic.Int64
}

// Stats is a point-in-time snapshot of the cluster's fault counters.
type Stats struct {
	Rounds        int64 // completed exchange rounds
	StaleHits     int64 // rounds satisfied from the stale cache
	Reconnects    int64 // connections lost and re-established
	DialRetries   int64 // failed dial attempts (each backed off)
	FramesCorrupt int64 // frames rejected by CRC/format validation
	Replays       int64 // log entries re-sent after a resumeAt rewind
}

// Stats returns the current counter values.
func (c *Cluster) Stats() Stats {
	return Stats{
		Rounds:        c.stats.rounds.Load(),
		StaleHits:     c.stats.staleHits.Load(),
		Reconnects:    c.stats.reconnects.Load(),
		DialRetries:   c.stats.dialRetries.Load(),
		FramesCorrupt: c.stats.framesCorrupt.Load(),
		Replays:       c.stats.replays.Load(),
	}
}

// Shard returns this process's shard id.
func (c *Cluster) Shard() int { return c.cfg.Shard }

// N returns the cluster size.
func (c *Cluster) N() int { return c.cfg.N }

// splitAddr maps a configured address to (network, address) for net.Dial /
// net.Listen: "unix:/path/sock" selects a unix socket, "tcp:host:port"
// (or a bare "host:port") selects TCP.
func splitAddr(addr string) (network, address string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:")
	default:
		return "tcp", addr
	}
}

// Open starts shard cfg.Shard of an N-process cluster: it binds this
// shard's listen address, starts dialing every lower-numbered shard (with
// bounded exponential backoff, forever), and accepts connections from
// higher-numbered ones. It returns immediately; connections come up in the
// background and the first Exchange waits for them.
func Open(cfg Config) (*Cluster, error) {
	cfg.fillDefaults()
	if cfg.N < 1 {
		return nil, fmt.Errorf("distnet: cluster size %d", cfg.N)
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.N {
		return nil, fmt.Errorf("distnet: shard %d out of range [0,%d)", cfg.Shard, cfg.N)
	}
	if len(cfg.Addrs) != cfg.N {
		return nil, fmt.Errorf("distnet: %d addresses for %d shards", len(cfg.Addrs), cfg.N)
	}
	c := &Cluster{cfg: cfg, done: make(chan struct{})}
	c.root = obs.Start("distnet.cluster")
	c.root.SetLabel(fmt.Sprintf("shard%d/%d", cfg.Shard, cfg.N))
	if cfg.N > 1 {
		network, address := splitAddr(cfg.Addrs[cfg.Shard])
		if network == "unix" {
			// A SIGKILLed shard leaves its socket file behind; the rejoining
			// process owns this address and must be able to rebind it.
			_ = os.Remove(address)
		}
		ln, err := net.Listen(network, address)
		if err != nil {
			c.root.End()
			return nil, fmt.Errorf("distnet: listen %s: %w", cfg.Addrs[cfg.Shard], err)
		}
		c.ln = ln
	}
	c.peer = make([]*peer, cfg.N)
	for id := 0; id < cfg.N; id++ {
		if id == cfg.Shard {
			continue
		}
		p := newPeer(c, id)
		c.peer[id] = p
		c.wg.Add(1)
		//lint:ignore naked-go per-peer sender is a long-lived connection actor joined by Close via wg
		go p.sendLoop()
		if p.dials {
			c.wg.Add(1)
			//lint:ignore naked-go per-peer dial/read supervisor is a long-lived connection actor joined by Close via wg
			go p.dialLoop()
		}
	}
	if c.ln != nil {
		c.wg.Add(1)
		//lint:ignore naked-go accept loop is a long-lived listener actor joined by Close via wg
		go c.acceptLoop()
	}
	return c, nil
}

// Close tears the cluster down: it stops every background goroutine,
// closes the listener and all connections, and ends the cluster span. A
// blocked Exchange returns an error promptly.
func (c *Cluster) Close() error {
	if c.closing.Swap(true) {
		return nil
	}
	close(c.done)
	// Let every sender finish its final drain before severing connections:
	// the peer may still be waiting on the last round's rows.
	for _, p := range c.peer {
		if p != nil {
			<-p.senderDone
		}
	}
	var err error
	if c.ln != nil {
		err = c.ln.Close()
	}
	for _, p := range c.peer {
		if p != nil {
			p.shutdown()
		}
	}
	c.wg.Wait()
	c.root.End()
	return err
}

// acceptLoop accepts inbound connections (from higher-numbered shards) and
// hands each to a handshake goroutine.
func (c *Cluster) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			if c.closing.Load() {
				return
			}
			select {
			case <-c.done:
				return
			case <-time.After(10 * time.Millisecond):
				continue
			}
		}
		c.wg.Add(1)
		//lint:ignore naked-go per-connection inbound handshake, joined by Close via wg
		go c.serveInbound(conn)
	}
}

// serveInbound validates an inbound connection's hello, answers with ours,
// installs the connection on the peer, and runs its read loop.
func (c *Cluster) serveInbound(conn net.Conn) {
	defer c.wg.Done()
	f, err := readFrame(conn, c.cfg.FailAfter)
	if err != nil {
		_ = conn.Close()
		return
	}
	n, fp, err := decodeHello(f)
	if err != nil || n != c.cfg.N || fp != c.cfg.Fingerprint ||
		f.from <= c.cfg.Shard || f.from >= c.cfg.N {
		// A peer from a different run (or a malformed dialer) must not
		// exchange rows with us; it will back off and retry, and keeps
		// failing until the operator fixes the mismatch.
		c.stats.framesCorrupt.Add(1)
		framesCorruptC.Add(1)
		_ = conn.Close()
		return
	}
	if err := writeFrame(conn, c.cfg.WriteTimeout, encodeHello(c.cfg.Shard, c.cfg.N, c.cfg.Fingerprint)); err != nil {
		_ = conn.Close()
		return
	}
	p := c.peer[f.from]
	p.install(conn)
	p.readLoop(conn)
}

// nextSite returns the next deterministic exchange-site name within the
// current epoch ("a0", "a1", ...). Lockstep shards call it in the same
// order, so a site names the same propagation step on every shard — the
// key the stale cache is aged by.
func (c *Cluster) nextSite() string {
	s := fmt.Sprintf("a%d", c.siteIdx)
	c.siteIdx++
	return s
}

// SetEpoch advances the cluster's epoch (the staleness clock) and resets
// the per-epoch site counter. Call it from a train.Hook at every epoch
// boundary.
func (c *Cluster) SetEpoch(epoch int) {
	c.epoch = int64(epoch)
	c.siteIdx = 0
}

// Epoch returns the current staleness-clock epoch.
func (c *Cluster) Epoch() int { return int(c.epoch) }

// MarshalBinary serializes the exchange cursor (round seq, epoch, site
// counter) for the checkpoint Aux blob, so a resumed shard rejoins the
// round sequence exactly where its snapshot left it.
func (c *Cluster) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 24)
	buf = binary.LittleEndian.AppendUint64(buf, c.seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.epoch))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.siteIdx))
	return buf, nil
}

// UnmarshalBinary restores the exchange cursor from a checkpoint Aux blob.
// Must run before the first Exchange (train resume does).
func (c *Cluster) UnmarshalBinary(data []byte) error {
	if len(data) != 24 {
		return fmt.Errorf("distnet: aux state is %d bytes, want 24", len(data))
	}
	c.seq = binary.LittleEndian.Uint64(data)
	c.epoch = int64(binary.LittleEndian.Uint64(data[8:]))
	c.siteIdx = int64(binary.LittleEndian.Uint64(data[16:]))
	return nil
}

// Exchange runs one round: send outgoing[id] to every peer id, then wait
// for every peer's rows for the same round. outgoing may map distinct peers
// to the same *RowBlock (an allgather); it is encoded once per distinct
// block. The returned map holds one RowBlock per peer.
//
// In synchronous mode a round either completes exactly or fails with a
// *RoundError after PeerTimeout. With MaxStaleness > 0, a peer that stays
// silent past ExchangeTimeout is substituted from the stale cache when the
// cached rows for this site are at most MaxStaleness epochs old; otherwise
// the wait continues to PeerTimeout and then fails loudly.
func (c *Cluster) Exchange(site string, outgoing map[int]*RowBlock) (map[int]*RowBlock, error) {
	if c.cfg.N == 1 {
		return map[int]*RowBlock{}, nil
	}
	c.seq++
	seq := c.seq
	epoch := c.epoch
	c.started = true

	sp := obs.Start("distnet.exchange")
	sp.SetLabel(site)
	sp.Link(seq)
	defer sp.End()

	encoded := make(map[*RowBlock][]byte, 1)
	for id, p := range c.peer {
		if p == nil {
			continue
		}
		blk := outgoing[id]
		if blk == nil {
			blk = &RowBlock{}
		}
		buf, ok := encoded[blk]
		if !ok {
			buf = encodeRows(c.cfg.Shard, seq, epoch, site, blk)
			encoded[blk] = buf
		}
		p.enqueue(seq, epoch, buf)
	}

	deadline := time.Now().Add(c.cfg.PeerTimeout)
	var staleAt time.Time
	if c.cfg.MaxStaleness > 0 {
		staleAt = time.Now().Add(c.cfg.ExchangeTimeout)
	}
	got := make(map[int]*RowBlock, c.cfg.N-1)
	for id, p := range c.peer {
		if p == nil {
			continue
		}
		blk, stale, waited, err := p.await(seq, site, epoch, deadline, staleAt)
		rsp := sp.Child("distnet.recv")
		rsp.SetLabel(fmt.Sprintf("shard%d", id))
		rsp.Link(seq)
		rsp.SetWait(waited)
		rsp.End()
		if err != nil {
			return nil, err
		}
		if stale {
			c.stats.staleHits.Add(1)
			staleHitsC.Add(1)
			sp.SetLabel(site + " stale")
		}
		got[id] = blk
		sp.AddCount(int64(len(blk.IDs)))
	}
	c.stats.rounds.Add(1)
	roundsC.Add(1)
	return got, nil
}

// ctxDone returns the configured context's done channel, or nil (blocks
// forever) when no context was supplied.
func (c *Cluster) ctxDone() <-chan struct{} {
	if c.cfg.Ctx == nil {
		return nil
	}
	return c.cfg.Ctx.Done()
}

func (c *Cluster) ctxErr() error {
	if c.cfg.Ctx == nil {
		return errors.New("no context")
	}
	return c.cfg.Ctx.Err()
}

// Cluster-level metric refs, disabled (one atomic load, no work) until
// EnableMetrics binds them to a registry.
var (
	roundsC        obs.CounterRef
	staleHitsC     obs.CounterRef
	reconnectsC    obs.CounterRef
	dialRetriesC   obs.CounterRef
	framesCorruptC obs.CounterRef
	replaysC       obs.CounterRef
	bytesSentC     obs.CounterRef
	bytesRecvC     obs.CounterRef
)

// EnableMetrics binds the runtime's metrics to reg (see DESIGN.md
// "Observability" for the name registry):
//
//	distnet.rounds          counter  completed exchange rounds
//	distnet.stale_hits      counter  rounds satisfied from the stale cache
//	distnet.reconnects      counter  connections lost and re-established
//	distnet.dial_retries    counter  failed dial attempts
//	distnet.frames_corrupt  counter  frames rejected by CRC/format checks
//	distnet.replays         counter  log entries re-sent after a rewind
//	distnet.bytes_sent      counter  wire bytes written
//	distnet.bytes_recv      counter  wire bytes read (validated frames)
//
// Call once at process start; pass nil to unbind.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		for _, r := range []*obs.CounterRef{&roundsC, &staleHitsC, &reconnectsC,
			&dialRetriesC, &framesCorruptC, &replaysC, &bytesSentC, &bytesRecvC} {
			r.Bind(nil)
		}
		return
	}
	roundsC.Bind(reg.Counter("distnet.rounds"))
	staleHitsC.Bind(reg.Counter("distnet.stale_hits"))
	reconnectsC.Bind(reg.Counter("distnet.reconnects"))
	dialRetriesC.Bind(reg.Counter("distnet.dial_retries"))
	framesCorruptC.Bind(reg.Counter("distnet.frames_corrupt"))
	replaysC.Bind(reg.Counter("distnet.replays"))
	bytesSentC.Bind(reg.Counter("distnet.bytes_sent"))
	bytesRecvC.Bind(reg.Counter("distnet.bytes_recv"))
}
