package distnet

import (
	"fmt"
	"strings"

	"scalegnn/internal/graph"
	"scalegnn/internal/partition"
	"scalegnn/internal/tensor"
)

// ExchangeError is the panic payload thrown by the propagation hook when a
// round fails terminally (peer timeout, staleness bound exceeded,
// cancellation). graph.ApplyHook has no error return — propagation is deep
// inside model forward/backward passes — so the hook unwinds with a typed
// panic that the process driving training recovers at the Fit boundary and
// converts into a clean fatal error.
type ExchangeError struct{ Err error }

func (e *ExchangeError) Error() string {
	msg := e.Err.Error()
	if strings.HasPrefix(msg, "distnet: ") {
		return msg // RoundError already carries the package prefix
	}
	return "distnet: " + msg
}
func (e *ExchangeError) Unwrap() error { return e.Err }

// Hook partitions every ApplyInto of a graph across the cluster: the local
// shard computes its owned destination rows with ApplyRowsInto and receives
// every other row from the peer that owns it, assembling the full product.
//
// Because the per-row SpMM kernel is shared with the single-process path
// and rows travel as raw IEEE-754 bits, the assembled matrix — and with
// lockstep-replicated dense math, the entire training trajectory — is
// bitwise identical to a single-process run in synchronous mode.
//
// Install with Attach; it covers every model whose propagation routes
// through Operator.ApplyInto.
type Hook struct {
	c     *Cluster
	owned []int32
}

// NewHook builds the propagation hook for this shard's partition. The
// assignment must have exactly one part per cluster shard.
func NewHook(c *Cluster, a *partition.Assignment) (*Hook, error) {
	if a.K != c.N() {
		return nil, fmt.Errorf("distnet: partition has %d parts for %d shards", a.K, c.N())
	}
	h := &Hook{c: c}
	for u, part := range a.Parts {
		if part < 0 || part >= a.K {
			return nil, fmt.Errorf("distnet: node %d assigned to part %d of %d", u, part, a.K)
		}
		if part == c.Shard() {
			h.owned = append(h.owned, int32(u))
		}
	}
	return h, nil
}

// Owned returns the destination rows this shard computes locally.
func (h *Hook) Owned() []int32 { return h.owned }

// Attach installs the hook on g; detach by attaching nil via g.SetApplyHook.
func (h *Hook) Attach(g *graph.CSR) { g.SetApplyHook(h) }

// Apply64 implements graph.ApplyHook for the float64 reference tier.
func (h *Hook) Apply64(op *graph.Operator, x, dst *tensor.Mat[float64]) {
	hookApply(h, op, x, dst)
}

// Apply32 implements graph.ApplyHook for the float32 speed tier.
func (h *Hook) Apply32(op *graph.OperatorOf[float32], x, dst *tensor.Mat[float32]) {
	hookApply(h, op, x, dst)
}

// hookApply is the shared exchange step: compute owned rows, allgather them
// (every shard's dense stage consumes the full matrix), and fill the rest
// from the received blocks.
func hookApply[T tensor.Elem](h *Hook, op *graph.OperatorOf[T], x, dst *tensor.Mat[T]) {
	op.ApplyRowsInto(x, dst, h.owned)
	if h.c.N() == 1 {
		return
	}
	blk := gatherRows(dst, h.owned)
	out := make(map[int]*RowBlock, h.c.N()-1)
	for id := range h.c.peer {
		if h.c.peer[id] != nil {
			out[id] = blk // allgather: every peer gets our owned rows
		}
	}
	recv, err := h.c.Exchange(h.c.nextSite(), out)
	if err != nil {
		panic(&ExchangeError{Err: err})
	}
	filled := len(h.owned)
	for id, b := range recv {
		if err := scatterRows(dst, b); err != nil {
			panic(&ExchangeError{Err: fmt.Errorf("rows from shard %d: %w", id, err)})
		}
		filled += len(b.IDs)
	}
	if filled != dst.Rows {
		panic(&ExchangeError{Err: fmt.Errorf("round assembled %d of %d rows", filled, dst.Rows)})
	}
}

// gatherRows copies the listed rows of m into a contiguous RowBlock.
func gatherRows[T tensor.Elem](m *tensor.Mat[T], ids []int32) *RowBlock {
	flat := make([]T, len(ids)*m.Cols)
	for i, id := range ids {
		copy(flat[i*m.Cols:(i+1)*m.Cols], m.Row(int(id)))
	}
	b := &RowBlock{IDs: ids, Cols: m.Cols}
	switch d := any(flat).(type) {
	case []float64:
		b.F64 = d
	case []float32:
		b.F32 = d
	}
	return b
}

// scatterRows copies a received block's rows into their positions in m,
// validating shape and element type against the destination.
func scatterRows[T tensor.Elem](m *tensor.Mat[T], b *RowBlock) error {
	if b.Cols != m.Cols {
		return fmt.Errorf("block has %d cols, want %d", b.Cols, m.Cols)
	}
	var flat []T
	if b.F64 != nil {
		d, ok := any(b.F64).([]T)
		if !ok {
			return fmt.Errorf("block is float64, destination is not")
		}
		flat = d
	} else {
		d, ok := any(b.F32).([]T)
		if !ok {
			return fmt.Errorf("block is float32, destination is not")
		}
		flat = d
	}
	if len(flat) != len(b.IDs)*b.Cols {
		return fmt.Errorf("block has %d values for %d rows of %d", len(flat), len(b.IDs), b.Cols)
	}
	for i, id := range b.IDs {
		if id < 0 || int(id) >= m.Rows {
			return fmt.Errorf("row id %d out of range [0,%d)", id, m.Rows)
		}
		copy(m.Row(int(id)), flat[i*b.Cols:(i+1)*b.Cols])
	}
	return nil
}
