package distnet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"scalegnn/internal/distsim"
	"scalegnn/internal/fault"
	"scalegnn/internal/graph"
	"scalegnn/internal/partition"
	"scalegnn/internal/tensor"
)

// sockAddrs returns k unix-socket addresses in a short-pathed temp dir
// (sun_path caps at ~100 bytes, so t.TempDir() is too deep on some CI).
func sockAddrs(t *testing.T, k int) []string {
	t.Helper()
	dir, err := os.MkdirTemp("", "dn")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.RemoveAll(dir) })
	addrs := make([]string, k)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("unix:%s/s%d.sock", dir, i)
	}
	return addrs
}

// startClusters opens k clusters over unix sockets, with mut applied to
// each Config before Open.
func startClusters(t *testing.T, k int, mut func(*Config)) []*Cluster {
	t.Helper()
	addrs := sockAddrs(t, k)
	cs := make([]*Cluster, k)
	for i := 0; i < k; i++ {
		cfg := Config{
			Shard: i, N: k, Addrs: addrs, Fingerprint: 0xfeed,
			PeerTimeout:    20 * time.Second,
			HeartbeatEvery: 50 * time.Millisecond,
			FailAfter:      time.Second,
		}
		if mut != nil {
			mut(&cfg)
		}
		c, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		cs[i] = c
	}
	return cs
}

// eachShard runs fn concurrently for every cluster (one goroutine per
// simulated process) and fails the test on the first error.
func eachShard(t *testing.T, cs []*Cluster, fn func(c *Cluster) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(cs))
	for i, c := range cs {
		wg.Add(1)
		//lint:ignore naked-go each goroutine simulates one shard process, joined via wg
		go func(i int, c *Cluster) {
			defer wg.Done()
			errs[i] = fn(c)
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
}

// fixture builds one shard's private copy of the shared deterministic
// dataset: every simulated process re-derives the same graph, features,
// and partition from the seed, exactly like real gnntrain shards do.
func fixture(n, k int) (*graph.CSR, *partition.Assignment, *tensor.Matrix) {
	rng := tensor.NewRand(23)
	g := graph.ErdosRenyi(n, 5*n, rng)
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i % k
	}
	x := tensor.RandNormal(n, 4, 1.0, rng)
	return g, &partition.Assignment{Parts: parts, K: k}, x
}

// TestHookApplyBitwiseIdentical: ApplyInto through the distributed hook
// (owned rows computed locally, the rest received over unix sockets) must
// be bitwise identical to the plain single-process ApplyInto, for 2 and 3
// shards.
func TestHookApplyBitwiseIdentical(t *testing.T) {
	for _, k := range []int{2, 3} {
		cs := startClusters(t, k, nil)
		results := make([]*tensor.Matrix, k)
		eachShard(t, cs, func(c *Cluster) (err error) {
			defer recoverExchange(&err)
			g, a, x := fixture(80, k)
			h, err := NewHook(c, a)
			if err != nil {
				return err
			}
			h.Attach(g)
			op := graph.NewOperator(g, graph.NormSymmetric, true)
			dst := tensor.New(x.Rows, x.Cols)
			op.ApplyInto(x, dst) // dispatches through the hook
			results[c.Shard()] = dst
			return nil
		})
		g, _, x := fixture(80, k)
		want := tensor.New(x.Rows, x.Cols)
		graph.NewOperator(g, graph.NormSymmetric, true).ApplyInto(x, want)
		for shard, got := range results {
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("k=%d shard %d: data[%d] = %v, want %v (not bitwise identical)",
						k, shard, i, got.Data[i], want.Data[i])
				}
			}
		}
		for _, c := range cs {
			if s := c.Stats(); s.StaleHits != 0 {
				t.Fatalf("sync-mode run recorded %d stale hits", s.StaleHits)
			}
		}
	}
}

// recoverExchange converts the hook's typed panic into an error return, the
// same recovery the gnntrain driver performs at the Fit boundary.
func recoverExchange(err *error) {
	if r := recover(); r != nil {
		if xe, ok := r.(*ExchangeError); ok {
			*err = xe
			return
		}
		panic(r)
	}
}

// TestPropagateMatchesDistsimReference: the wire protocol's halo-exchange
// Propagate must be bitwise identical to the in-process distsim.Exchange
// reference (and therefore to the sequential aggregation distsim is tested
// against) — distsim is the executable spec the real protocol answers to.
func TestPropagateMatchesDistsimReference(t *testing.T) {
	const k = 2
	cs := startClusters(t, k, nil)
	g, a, x := fixture(70, k)
	want, err := distsim.Exchange(context.Background(), g, a, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*tensor.Matrix, k)
	eachShard(t, cs, func(c *Cluster) error {
		g, a, x := fixture(70, k)
		op := graph.NewOperator(g, graph.NormNone, false) // plain neighbor sum
		plan, err := PlanBoundary(g, a, c.Shard())
		if err != nil {
			return err
		}
		out, err := Propagate(c, op, plan, x, 1)
		if err != nil {
			return err
		}
		results[c.Shard()] = out
		return nil
	})
	for shard, got := range results {
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shard %d: data[%d] = %v, want %v (diverges from distsim reference)",
					shard, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// oneRowBlock is a tiny distinguishable payload for protocol-level tests.
func oneRowBlock(v float64) *RowBlock {
	return &RowBlock{IDs: []int32{0}, Cols: 1, F64: []float64{v}}
}

// allPeers maps every remote shard to the same block.
func allPeers(c *Cluster, b *RowBlock) map[int]*RowBlock {
	out := make(map[int]*RowBlock)
	for id, p := range c.peer {
		if p != nil {
			out[id] = b
		}
	}
	return out
}

// TestStaleFallback: with MaxStaleness > 0, a slow peer's round is served
// from the stale cache after ExchangeTimeout — the fast shard keeps moving
// with rows one round old, and the stale hit is counted.
func TestStaleFallback(t *testing.T) {
	cs := startClusters(t, 2, func(cfg *Config) {
		cfg.MaxStaleness = 2
		cfg.ExchangeTimeout = 100 * time.Millisecond
	})
	staleVal := make(chan float64, 1)
	eachShard(t, cs, func(c *Cluster) error {
		if c.Shard() == 1 {
			// Round 1 on time, round 2 a second late.
			if _, err := c.Exchange("s", allPeers(c, oneRowBlock(10))); err != nil {
				return err
			}
			time.Sleep(time.Second)
			_, err := c.Exchange("s", allPeers(c, oneRowBlock(20)))
			return err
		}
		if _, err := c.Exchange("s", allPeers(c, oneRowBlock(1))); err != nil {
			return err
		}
		got, err := c.Exchange("s", allPeers(c, oneRowBlock(2)))
		if err != nil {
			return err
		}
		staleVal <- got[1].F64[0]
		return nil
	})
	if v := <-staleVal; v != 10 {
		t.Fatalf("stale round returned %v, want the cached round-1 value 10", v)
	}
	if s := cs[0].Stats(); s.StaleHits != 1 {
		t.Fatalf("fast shard counted %d stale hits, want 1", s.StaleHits)
	}
	if s := cs[1].Stats(); s.StaleHits != 0 {
		t.Fatalf("slow shard counted %d stale hits, want 0", s.StaleHits)
	}
}

// TestMaxStalenessExceededFailsLoudly: once the only cached rows age past
// the bound, the round must fail with a descriptive RoundError rather than
// serving arbitrarily old embeddings or hanging.
func TestMaxStalenessExceededFailsLoudly(t *testing.T) {
	cs := startClusters(t, 2, func(cfg *Config) {
		cfg.MaxStaleness = 1
		cfg.ExchangeTimeout = 50 * time.Millisecond
		cfg.PeerTimeout = 700 * time.Millisecond
	})
	stop := make(chan struct{})
	errc := make(chan error, 1)
	eachShard(t, cs, func(c *Cluster) error {
		if c.Shard() == 1 {
			// Participate in round 1, then go quiet (alive, heartbeating,
			// but contributing nothing) until shard 0 has failed.
			_, err := c.Exchange("s", allPeers(c, oneRowBlock(10)))
			<-stop
			return err
		}
		defer close(stop)
		if _, err := c.Exchange("s", allPeers(c, oneRowBlock(1))); err != nil {
			return err
		}
		// Cache age 1 <= bound: still served.
		c.SetEpoch(1)
		if _, err := c.Exchange("s", allPeers(c, oneRowBlock(2))); err != nil {
			return fmt.Errorf("age-1 round should have used the cache: %w", err)
		}
		// Cache age 3 > bound: must fail loudly.
		c.SetEpoch(3)
		_, err := c.Exchange("s", allPeers(c, oneRowBlock(3)))
		errc <- err
		return nil
	})
	err := <-errc
	if err == nil {
		t.Fatal("round past the staleness bound reported success")
	}
	var re *RoundError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RoundError: %v", err, err)
	}
	if !strings.Contains(err.Error(), "staleness") {
		t.Fatalf("error does not name the staleness bound: %v", err)
	}
	if s := cs[0].Stats(); s.StaleHits != 1 {
		t.Fatalf("stale hits = %d, want exactly the age-1 round", s.StaleHits)
	}
}

// TestTornFrameRecovery: an injected partial write (a torn frame on the
// wire) must sever the connection, reconnect, replay, and still deliver a
// correct round — and the damage must show up in the counters.
func TestTornFrameRecovery(t *testing.T) {
	t.Cleanup(fault.Reset)
	cs := startClusters(t, 2, nil)
	// Let the mesh settle so the handshake is never the torn write; then
	// arm: the 3rd send after arming is a live heartbeat, resumeAt, or
	// rows frame from one of the shards.
	time.Sleep(200 * time.Millisecond)
	if err := fault.Set("distnet.send", "partial@3"); err != nil {
		t.Fatal(err)
	}
	const rounds = 6
	vals := make([][]float64, 2)
	eachShard(t, cs, func(c *Cluster) error {
		for r := 1; r <= rounds; r++ {
			got, err := c.Exchange(fmt.Sprintf("r%d", r), allPeers(c, oneRowBlock(float64(10*c.Shard()+r))))
			if err != nil {
				return err
			}
			vals[c.Shard()] = append(vals[c.Shard()], got[1-c.Shard()].F64[0])
		}
		return nil
	})
	for shard, got := range vals {
		for r := 1; r <= rounds; r++ {
			want := float64(10*(1-shard) + r)
			if got[r-1] != want {
				t.Fatalf("shard %d round %d: got %v, want %v", shard, r, got[r-1], want)
			}
		}
	}
	if fault.Hits("distnet.send") < 3 {
		t.Fatal("partial-write failpoint never fired")
	}
	total := int64(0)
	for _, c := range cs {
		s := c.Stats()
		total += s.FramesCorrupt + s.Reconnects + s.DialRetries
	}
	if total == 0 {
		t.Fatal("torn frame left no trace in the fault counters")
	}
}

// TestResumeReplayAfterRestart: a shard that dies mid-sequence and comes
// back with its checkpointed cursor must be able to finish the rounds the
// surviving shard is blocked on, fed by the peer's send-log replay.
func TestResumeReplayAfterRestart(t *testing.T) {
	addrs := sockAddrs(t, 2)
	mk := func(shard int) *Cluster {
		c, err := Open(Config{
			Shard: shard, N: 2, Addrs: addrs, Fingerprint: 0xfeed,
			PeerTimeout:    20 * time.Second,
			HeartbeatEvery: 50 * time.Millisecond,
			FailAfter:      time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c0 := mk(0)
	defer c0.Close()
	c1 := mk(1)

	results := make(chan error, 2)
	//lint:ignore naked-go simulates the surviving shard process, joined via results
	go func() {
		for r := 1; r <= 5; r++ {
			got, err := c0.Exchange("s", allPeers(c0, oneRowBlock(float64(r))))
			if err != nil {
				results <- fmt.Errorf("round %d: %w", r, err)
				return
			}
			if v := got[1].F64[0]; v != float64(100+r) {
				results <- fmt.Errorf("round %d: got %v, want %v", r, v, float64(100+r))
				return
			}
		}
		results <- nil
	}()
	// Shard 1 completes three rounds, then "crashes".
	for r := 1; r <= 3; r++ {
		if _, err := c1.Exchange("s", allPeers(c1, oneRowBlock(float64(100+r)))); err != nil {
			t.Fatalf("pre-crash round %d: %v", r, err)
		}
	}
	cursor, err := c1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	_ = c1.Close()

	// Restart shard 1 from the checkpointed cursor; its next rounds are 4
	// and 5, and shard 0's send log replays what it missed.
	c1b := mk(1)
	defer c1b.Close()
	if err := c1b.UnmarshalBinary(cursor); err != nil {
		t.Fatal(err)
	}
	for r := 4; r <= 5; r++ {
		got, err := c1b.Exchange("s", allPeers(c1b, oneRowBlock(float64(100+r))))
		if err != nil {
			t.Fatalf("post-resume round %d: %v", r, err)
		}
		if v := got[0].F64[0]; v != float64(r) {
			t.Fatalf("post-resume round %d: got %v, want %v", r, v, float64(r))
		}
	}
	if err := <-results; err != nil {
		t.Fatalf("surviving shard: %v", err)
	}
	if s := c0.Stats(); s.Reconnects == 0 {
		t.Fatal("surviving shard never recorded the reconnect")
	}
}

// TestExchangeCancelled: a cancelled context aborts a blocked round
// promptly with a RoundError that reflects the cancellation.
func TestExchangeCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cs := startClusters(t, 2, func(cfg *Config) {
		cfg.Ctx = ctx
		cfg.PeerTimeout = 30 * time.Second
	})
	//lint:ignore naked-go timed cancel helper; the cancelled Exchange below synchronizes the test
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := cs[0].Exchange("s", allPeers(cs[0], oneRowBlock(1)))
	if err == nil {
		t.Fatal("cancelled exchange reported success")
	}
	if !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("error does not reflect cancellation: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not unblock the round promptly")
	}
}

// TestSyncModeTimesOutLoudly: strict sync mode never substitutes rows — a
// silent peer fails the round at PeerTimeout with zero stale hits.
func TestSyncModeTimesOutLoudly(t *testing.T) {
	cs := startClusters(t, 2, func(cfg *Config) {
		cfg.PeerTimeout = 400 * time.Millisecond
	})
	_, err := cs[0].Exchange("s", allPeers(cs[0], oneRowBlock(1)))
	var re *RoundError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T (%v), want *RoundError", err, err)
	}
	if s := cs[0].Stats(); s.StaleHits != 0 || s.Rounds != 0 {
		t.Fatalf("sync timeout: stale=%d rounds=%d, want 0/0", s.StaleHits, s.Rounds)
	}
}

// TestHandshakeRejectsWrongFingerprint: a shard from a different run must
// never join the mesh; its dials are rejected and the good shard's round
// times out rather than consuming foreign rows.
func TestHandshakeRejectsWrongFingerprint(t *testing.T) {
	addrs := sockAddrs(t, 2)
	open := func(shard int, fp uint64) *Cluster {
		c, err := Open(Config{
			Shard: shard, N: 2, Addrs: addrs, Fingerprint: fp,
			PeerTimeout: 400 * time.Millisecond, FailAfter: time.Second,
			HeartbeatEvery: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	c0 := open(0, 0xaaaa)
	open(1, 0xbbbb) // imposter: same addresses, different run
	_, err := c0.Exchange("s", allPeers(c0, oneRowBlock(1)))
	if err == nil {
		t.Fatal("round completed against a shard from a different run")
	}
	if s := c0.Stats(); s.Rounds != 0 {
		t.Fatal("foreign rows were consumed")
	}
}
