package distnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"scalegnn/internal/fault"
)

// logEntry is one round's encoded rows frame for one peer, retained for
// replay until its epoch ages out of the retention window.
type logEntry struct {
	seq   uint64
	epoch int64
	buf   []byte
}

// peer is the state machine for one remote shard: the live connection (if
// any), the demand-gated send log, the per-round inbox, and the stale
// cache. One sender goroutine owns all post-handshake writes; exactly one
// read loop runs per live connection.
type peer struct {
	c     *Cluster
	id    int
	dials bool // we dial (our shard id is higher); otherwise we accept

	mu        sync.Mutex
	conn      net.Conn
	hadConn   bool   // a connection has been installed at least once
	sendFrom  uint64 // replay gate: first seq the peer wants; 0 = paused
	sent      uint64 // highest seq transmitted since the last rewind
	maxSent   uint64 // highest seq ever transmitted (replay accounting)
	requested bool   // our resumeAt has been issued on the current conn
	resumeAt  uint64 // pending resumeAt want-seq to send; 0 = none
	log       []logEntry
	inbox     map[uint64]*rowsMsg
	consumed  uint64 // highest round seq consumed from this peer
	cache     map[string]*rowsMsg

	wake       chan struct{} // sender kick
	note       chan struct{} // waiter kick (inbox insert / connection change)
	senderDone chan struct{} // closed when sendLoop exits (after its final drain)
}

func newPeer(c *Cluster, id int) *peer {
	return &peer{
		c:     c,
		id:    id,
		dials: c.cfg.Shard > id,
		inbox:      make(map[uint64]*rowsMsg),
		cache:      make(map[string]*rowsMsg),
		wake:       make(chan struct{}, 1),
		note:       make(chan struct{}, 1),
		senderDone: make(chan struct{}),
	}
}

// kick makes a non-blocking wakeup signal on a capacity-1 channel.
func kick(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// install makes conn the peer's live connection, displacing (and closing)
// any previous one. The sender stays paused until the peer's resumeAt
// arrives; our own resumeAt request is reset so the next await re-issues it
// on the new connection.
func (p *peer) install(conn net.Conn) {
	p.mu.Lock()
	old := p.conn
	p.conn = conn
	p.sendFrom = 0
	p.sent = 0
	p.requested = false
	p.resumeAt = 0
	if p.hadConn {
		p.c.stats.reconnects.Add(1)
		reconnectsC.Add(1)
	}
	p.hadConn = true
	p.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	kick(p.wake)
	kick(p.note)
}

// lose retires conn if it is still the live connection (a stale loser of an
// install race is just closed). The waiter is kicked so it can notice the
// outage and re-request once a new connection lands.
func (p *peer) lose(conn net.Conn) {
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
		p.sendFrom = 0
		p.requested = false
		p.resumeAt = 0
	}
	p.mu.Unlock()
	_ = conn.Close()
	kick(p.note)
}

// shutdown severs the live connection during Close so blocked reads and
// writes fail immediately.
func (p *peer) shutdown() {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// enqueue appends one round's encoded frame to the send log, prunes entries
// older than the retention window, and (on the first round after start or
// resume) schedules our resumeAt request telling the peer which round we
// need next.
func (p *peer) enqueue(seq uint64, epoch int64, buf []byte) {
	p.mu.Lock()
	p.log = append(p.log, logEntry{seq: seq, epoch: epoch, buf: buf})
	floor := epoch - int64(p.c.cfg.RetainEpochs)
	cut := 0
	for cut < len(p.log) && p.log[cut].epoch < floor {
		cut++
	}
	if cut > 0 {
		p.log = append(p.log[:0:0], p.log[cut:]...)
	}
	if !p.requested {
		p.resumeAt = seq
		p.requested = true
	}
	p.mu.Unlock()
	kick(p.wake)
}

// sendLoop is the peer's single writer: it drains the pending resumeAt and
// every unsent log entry at or past the peer's replay gate, and heartbeats
// on idle ticks so the remote failure detector sees a live connection.
func (p *peer) sendLoop() {
	defer p.c.wg.Done()
	defer close(p.senderDone)
	hb := time.NewTicker(p.c.cfg.HeartbeatEvery)
	defer hb.Stop()
	heartbeat := encodeFrame(typeHeartbeat, p.c.cfg.Shard, nil)
	for {
		beat := false
		select {
		case <-p.wake:
		case <-hb.C:
			beat = true
		case <-p.c.done:
			// Final drain: a round enqueued just before Close (the last
			// Exchange of a run) must still reach the peer, which may be one
			// frame behind us. The write deadline bounds the attempt.
			p.flush()
			return
		}
		conn := p.flush()
		if beat && conn != nil {
			if err := writeFrame(conn, p.c.cfg.WriteTimeout, heartbeat); err != nil {
				p.lose(conn)
			}
		}
	}
}

// flush writes everything currently sendable, looping until the log is
// drained or the connection dies. It returns the live connection (nil if
// down) for the caller's heartbeat. Frames are staged under the lock and
// written outside it, so a slow write never blocks the read loop's routing.
func (p *peer) flush() net.Conn {
	for {
		p.mu.Lock()
		conn := p.conn
		var bufs [][]byte
		replayed := int64(0)
		if conn != nil {
			if p.resumeAt != 0 {
				bufs = append(bufs, encodeResumeAt(p.c.cfg.Shard, p.resumeAt))
				p.resumeAt = 0
			}
			if p.sendFrom != 0 {
				for _, e := range p.log {
					if e.seq >= p.sendFrom && e.seq > p.sent {
						bufs = append(bufs, e.buf)
						p.sent = e.seq
						if e.seq <= p.maxSent {
							replayed++
						} else {
							p.maxSent = e.seq
						}
					}
				}
			}
		}
		p.mu.Unlock()
		if replayed > 0 {
			p.c.stats.replays.Add(replayed)
			replaysC.Add(replayed)
		}
		if conn == nil || len(bufs) == 0 {
			return conn
		}
		for _, b := range bufs {
			if err := writeFrame(conn, p.c.cfg.WriteTimeout, b); err != nil {
				p.lose(conn)
				return nil
			}
		}
	}
}

// readLoop consumes frames from conn until it dies: heartbeats refresh the
// failure detector implicitly (the next read re-arms the deadline),
// resumeAt rewinds the send gate, and rows land in the inbox and stale
// cache. Any corruption severs the connection — replay re-delivers.
func (p *peer) readLoop(conn net.Conn) {
	for {
		f, err := readFrame(conn, p.c.cfg.FailAfter)
		if err != nil {
			if errors.Is(err, errCorrupt) || errors.Is(err, fault.ErrPartial) {
				p.c.stats.framesCorrupt.Add(1)
				framesCorruptC.Add(1)
			}
			p.lose(conn)
			return
		}
		switch f.typ {
		case typeHeartbeat:
			// Liveness only; the read deadline was already re-armed.
		case typeResumeAt:
			want, err := decodeResumeAt(f)
			if err != nil {
				p.c.stats.framesCorrupt.Add(1)
				framesCorruptC.Add(1)
				p.lose(conn)
				return
			}
			p.mu.Lock()
			p.sendFrom = want
			p.sent = want - 1
			p.mu.Unlock()
			kick(p.wake)
		case typeRows:
			m, err := decodeRows(f)
			if err != nil {
				p.c.stats.framesCorrupt.Add(1)
				framesCorruptC.Add(1)
				p.lose(conn)
				return
			}
			p.mu.Lock()
			if m.seq > p.consumed && len(p.inbox) < maxInbox {
				p.inbox[m.seq] = m
			}
			// Even a duplicate or late round refreshes the stale cache:
			// newest epoch per site wins.
			if cur := p.cache[m.site]; cur == nil || m.epoch >= cur.epoch {
				p.cache[m.site] = m
			}
			p.mu.Unlock()
			kick(p.note)
		}
	}
}

// await blocks until the peer's rows for round seq arrive (fresh), the
// stale cache can stand in for them (stale), or the round fails. It reports
// how long it waited for the round span's wait attribution.
func (p *peer) await(seq uint64, site string, epoch int64, deadline, staleAt time.Time) (blk *RowBlock, stale bool, waited time.Duration, err error) {
	start := time.Now()
	for {
		p.mu.Lock()
		if m, ok := p.inbox[seq]; ok {
			for s := range p.inbox {
				if s <= seq {
					delete(p.inbox, s)
				}
			}
			p.consumed = seq
			p.mu.Unlock()
			return m.block, false, time.Since(start), nil
		}
		// If the connection churned since our last resumeAt, re-issue it
		// for exactly the round we are stuck on.
		if p.conn != nil && !p.requested {
			p.resumeAt = seq
			p.requested = true
			kick(p.wake)
		}
		var sub *rowsMsg
		if !staleAt.IsZero() && time.Now().After(staleAt) {
			if cm := p.cache[site]; cm != nil && epoch-cm.epoch <= int64(p.c.cfg.MaxStaleness) {
				sub = cm
				p.consumed = seq
				for s := range p.inbox {
					if s <= seq {
						delete(p.inbox, s)
					}
				}
			}
		}
		p.mu.Unlock()
		if sub != nil {
			return sub.block, true, time.Since(start), nil
		}
		if time.Now().After(deadline) {
			why := "no rows within the peer timeout"
			if p.c.cfg.MaxStaleness > 0 {
				why = fmt.Sprintf("max staleness exceeded: no rows within the peer timeout and no cached rows within %d epochs", p.c.cfg.MaxStaleness)
			}
			return nil, false, time.Since(start), &RoundError{Site: site, Seq: seq, Peer: p.id, Why: why}
		}
		select {
		case <-p.note:
		case <-time.After(25 * time.Millisecond):
		case <-p.c.ctxDone():
			return nil, false, time.Since(start), &RoundError{Site: site, Seq: seq, Peer: p.id, Why: "exchange cancelled", Err: p.c.ctxErr()}
		case <-p.c.done:
			return nil, false, time.Since(start), &RoundError{Site: site, Seq: seq, Peer: p.id, Why: "cluster closed"}
		}
	}
}

// dialLoop maintains the outbound connection to a lower-numbered shard:
// dial, handshake, install, and run the read loop; on any failure, back off
// exponentially (bounded) and try again until the cluster closes.
//
// Failpoint "distnet.dial" is evaluated before every attempt; any injected
// error counts as a failed dial.
func (p *peer) dialLoop() {
	defer p.c.wg.Done()
	backoff := p.c.cfg.DialBackoff
	for {
		select {
		case <-p.c.done:
			return
		default:
		}
		conn, err := p.dialOnce()
		if err != nil {
			p.c.stats.dialRetries.Add(1)
			dialRetriesC.Add(1)
			select {
			case <-p.c.done:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > p.c.cfg.MaxBackoff {
				backoff = p.c.cfg.MaxBackoff
			}
			continue
		}
		backoff = p.c.cfg.DialBackoff
		p.install(conn)
		p.readLoop(conn) // returns when the connection dies
	}
}

// dialOnce performs one dial + handshake attempt.
func (p *peer) dialOnce() (net.Conn, error) {
	if err := fault.Inject("distnet.dial"); err != nil {
		return nil, err
	}
	network, address := splitAddr(p.c.cfg.Addrs[p.id])
	conn, err := net.DialTimeout(network, address, p.c.cfg.FailAfter)
	if err != nil {
		return nil, err
	}
	cfg := &p.c.cfg
	if err := writeFrame(conn, cfg.WriteTimeout, encodeHello(cfg.Shard, cfg.N, cfg.Fingerprint)); err != nil {
		_ = conn.Close()
		return nil, err
	}
	f, err := readFrame(conn, cfg.FailAfter)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	n, fp, err := decodeHello(f)
	if err != nil || f.from != p.id || n != cfg.N || fp != cfg.Fingerprint {
		p.c.stats.framesCorrupt.Add(1)
		framesCorruptC.Add(1)
		_ = conn.Close()
		return nil, fmt.Errorf("distnet: handshake with shard %d rejected (cluster %d fingerprint %016x, want %d/%016x)",
			p.id, n, fp, cfg.N, cfg.Fingerprint)
	}
	return conn, nil
}
