package distnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync/atomic"
	"time"

	"scalegnn/internal/fault"
)

// Process-wide wire-volume counters, mirrored into the obs registry when
// EnableMetrics is on. The benchmark harness reads them directly (as
// deltas) to report exchange volume per configuration.
var wireSent, wireRecv atomic.Int64

// WireBytes returns the total frame bytes this process has sent and
// received across all clusters since start.
func WireBytes() (sent, recv int64) { return wireSent.Load(), wireRecv.Load() }

// Wire format. Every message is one frame:
//
//	offset  size  field
//	0       4     magic "SGNX"
//	4       1     protocol version (1)
//	5       1     frame type
//	6       2     sender shard (uint16)
//	8       4     payload length (uint32)
//	12      n     payload
//	12+n    4     CRC32 (IEEE) over every preceding byte
//
// The trailing checksum makes a torn or bit-flipped frame indistinguishable
// from garbage at read time: the receiver severs the connection and lets the
// replay protocol re-deliver, rather than trusting a half-written round.
const (
	frameMagic   = "SGNX"
	protoVersion = 1
	headerLen    = 12
	// maxPayload bounds a frame's claimed payload so a corrupt length field
	// cannot drive an allocation or a multi-gigabyte read.
	maxPayload = 1 << 30
)

// Frame types.
const (
	typeHello     = 1 // handshake: cluster shape + run fingerprint
	typeRows      = 2 // one shard's rows for one exchange round
	typeHeartbeat = 3 // liveness; carries no payload
	typeResumeAt  = 4 // receiver asks the sender to (re)send from a round
)

// Typed frame errors. errCorrupt covers torn frames, checksum mismatches,
// and malformed payloads — anything where the bytes cannot be trusted.
var (
	errCorrupt = errors.New("distnet: corrupt frame")
)

// frame is one decoded wire message.
type frame struct {
	typ     byte
	from    int
	payload []byte
}

// encodeFrame serializes a frame, including the trailing checksum.
func encodeFrame(typ byte, from int, payload []byte) []byte {
	buf := make([]byte, 0, headerLen+len(payload)+4)
	buf = append(buf, frameMagic...)
	buf = append(buf, protoVersion, typ)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(from))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// writeFrame writes one encoded frame under a fresh write deadline.
//
// Failpoint "distnet.send" (internal/fault) is evaluated per frame: "drop"
// skips the write (a silently lost message), "partial" writes half the
// frame and severs the connection (a torn frame on the receiver's wire),
// "error" fails the write outright.
func writeFrame(conn net.Conn, timeout time.Duration, buf []byte) error {
	if err := fault.Inject("distnet.send"); err != nil {
		switch {
		case errors.Is(err, fault.ErrDrop):
			return nil
		case errors.Is(err, fault.ErrPartial):
			if derr := conn.SetWriteDeadline(time.Now().Add(timeout)); derr != nil {
				return derr
			}
			_, _ = conn.Write(buf[:len(buf)/2])
			_ = conn.Close()
			return err
		default:
			return err
		}
	}
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	n, err := conn.Write(buf)
	wireSent.Add(int64(n))
	bytesSentC.Add(int64(n))
	return err
}

// readFrame reads and validates one frame under a fresh read deadline; the
// deadline doubles as the peer-failure detector (heartbeats arrive well
// inside it on a live connection). Corruption — bad magic, bad version, an
// absurd length, a checksum mismatch, or a mid-frame EOF — returns an error
// wrapping errCorrupt.
//
// Failpoint "distnet.recv" is evaluated per frame before the read.
func readFrame(conn net.Conn, timeout time.Duration) (frame, error) {
	if err := fault.Inject("distnet.recv"); err != nil {
		return frame{}, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return frame{}, err
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return frame{}, err
	}
	if string(hdr[:4]) != frameMagic {
		return frame{}, fmt.Errorf("%w: bad magic %q", errCorrupt, hdr[:4])
	}
	if hdr[4] != protoVersion {
		return frame{}, fmt.Errorf("%w: protocol version %d, want %d", errCorrupt, hdr[4], protoVersion)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	if n > maxPayload {
		return frame{}, fmt.Errorf("%w: payload claims %d bytes", errCorrupt, n)
	}
	rest := make([]byte, int(n)+4)
	if _, err := io.ReadFull(conn, rest); err != nil {
		// A half-delivered frame (sender died or tore the write) surfaces
		// as an unexpected EOF mid-body: corruption, not a clean close.
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return frame{}, fmt.Errorf("%w: truncated body: %v", errCorrupt, err)
		}
		return frame{}, err
	}
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, rest[:n])
	if got := binary.LittleEndian.Uint32(rest[n:]); got != sum {
		return frame{}, fmt.Errorf("%w: checksum %08x, computed %08x", errCorrupt, got, sum)
	}
	wireRecv.Add(int64(headerLen) + int64(n) + 4)
	bytesRecvC.Add(int64(headerLen) + int64(n) + 4)
	return frame{
		typ:     hdr[5],
		from:    int(binary.LittleEndian.Uint16(hdr[6:])),
		payload: rest[:n:n],
	}, nil
}

// Hello payload: cluster size (uint16) + run fingerprint (uint64). A
// mismatch on either side means the processes disagree about the run and
// must not exchange rows.
func encodeHello(from, n int, fingerprint uint64) []byte {
	p := make([]byte, 0, 10)
	p = binary.LittleEndian.AppendUint16(p, uint16(n))
	p = binary.LittleEndian.AppendUint64(p, fingerprint)
	return encodeFrame(typeHello, from, p)
}

func decodeHello(f frame) (n int, fingerprint uint64, err error) {
	if f.typ != typeHello || len(f.payload) != 10 {
		return 0, 0, fmt.Errorf("%w: hello payload %d bytes", errCorrupt, len(f.payload))
	}
	return int(binary.LittleEndian.Uint16(f.payload)),
		binary.LittleEndian.Uint64(f.payload[2:]), nil
}

// ResumeAt payload: the first round seq the receiver still needs.
func encodeResumeAt(from int, want uint64) []byte {
	p := binary.LittleEndian.AppendUint64(make([]byte, 0, 8), want)
	return encodeFrame(typeResumeAt, from, p)
}

func decodeResumeAt(f frame) (uint64, error) {
	if len(f.payload) != 8 {
		return 0, fmt.Errorf("%w: resumeAt payload %d bytes", errCorrupt, len(f.payload))
	}
	return binary.LittleEndian.Uint64(f.payload), nil
}

// Rows payload:
//
//	seq (uint64), epoch (int64), dtype (uint8: 0 float64, 1 float32),
//	cols (uint32), rowCount (uint32), site (uint16 length + bytes),
//	then rowCount × (rowID uint32 + cols elements).
//
// Elements travel as raw IEEE-754 bit patterns (8 bytes for float64, 4 for
// float32), so a row received over the wire is bitwise the row the sender
// computed — the property the whole sync-mode parity story rests on.
type rowsMsg struct {
	seq   uint64
	epoch int64
	site  string
	block *RowBlock
}

func encodeRows(from int, seq uint64, epoch int64, site string, b *RowBlock) []byte {
	elem := 8
	if b.F32 != nil {
		elem = 4
	}
	p := make([]byte, 0, 8+8+1+4+4+2+len(site)+len(b.IDs)*(4+b.Cols*elem))
	p = binary.LittleEndian.AppendUint64(p, seq)
	p = binary.LittleEndian.AppendUint64(p, uint64(epoch))
	if b.F32 != nil {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	p = binary.LittleEndian.AppendUint32(p, uint32(b.Cols))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(b.IDs)))
	p = binary.LittleEndian.AppendUint16(p, uint16(len(site)))
	p = append(p, site...)
	for i, id := range b.IDs {
		p = binary.LittleEndian.AppendUint32(p, uint32(id))
		if b.F32 != nil {
			for _, v := range b.F32[i*b.Cols : (i+1)*b.Cols] {
				p = binary.LittleEndian.AppendUint32(p, math.Float32bits(v))
			}
		} else {
			for _, v := range b.F64[i*b.Cols : (i+1)*b.Cols] {
				p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
			}
		}
	}
	return encodeFrame(typeRows, from, p)
}

func decodeRows(f frame) (*rowsMsg, error) {
	p := f.payload
	if len(p) < 8+8+1+4+4+2 {
		return nil, fmt.Errorf("%w: rows payload %d bytes", errCorrupt, len(p))
	}
	m := &rowsMsg{
		seq:   binary.LittleEndian.Uint64(p),
		epoch: int64(binary.LittleEndian.Uint64(p[8:])),
	}
	dtype := p[16]
	cols := int(binary.LittleEndian.Uint32(p[17:]))
	rows := int(binary.LittleEndian.Uint32(p[21:]))
	siteLen := int(binary.LittleEndian.Uint16(p[25:]))
	p = p[27:]
	if dtype > 1 || cols < 0 || rows < 0 || len(p) < siteLen {
		return nil, fmt.Errorf("%w: malformed rows header", errCorrupt)
	}
	m.site = string(p[:siteLen])
	p = p[siteLen:]
	elem := 8
	if dtype == 1 {
		elem = 4
	}
	if len(p) != rows*(4+cols*elem) {
		return nil, fmt.Errorf("%w: rows body %d bytes, want %d", errCorrupt, len(p), rows*(4+cols*elem))
	}
	b := &RowBlock{Cols: cols, IDs: make([]int32, rows)}
	if dtype == 1 {
		b.F32 = make([]float32, rows*cols)
	} else {
		b.F64 = make([]float64, rows*cols)
	}
	for i := 0; i < rows; i++ {
		b.IDs[i] = int32(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if dtype == 1 {
			for j := 0; j < cols; j++ {
				b.F32[i*cols+j] = math.Float32frombits(binary.LittleEndian.Uint32(p))
				p = p[4:]
			}
		} else {
			for j := 0; j < cols; j++ {
				b.F64[i*cols+j] = math.Float64frombits(binary.LittleEndian.Uint64(p))
				p = p[8:]
			}
		}
	}
	m.block = b
	return m, nil
}
