// Package linkpred implements link prediction over stored walk sets — the
// evaluation task of the subgraph-based representation learning systems
// (SUREL/SUREL+/GENTI, tutorial §3.3.3). A task hides a fraction of edges,
// samples non-edges as negatives, and asks a model to rank true pairs above
// false ones (ROC-AUC).
//
// Two predictors are provided:
//
//   - CommonNeighbors: the classic structural heuristic baseline.
//   - WalkFeatureModel: SUREL-style — each query pair is assembled by
//     joining the endpoints' stored walk sets, the joint landing-profile
//     features are pooled into a fixed-length vector, and a small MLP is
//     trained on labeled pairs. All graph access happens in the walk store;
//     training and inference are pure tensor operations.
package linkpred

import (
	"fmt"
	"math/rand/v2"

	"scalegnn/internal/graph"
	"scalegnn/internal/metrics"
	"scalegnn/internal/nn"
	"scalegnn/internal/par"
	"scalegnn/internal/subgraph"
	"scalegnn/internal/tensor"
	"scalegnn/internal/train"
)

// Task is a link-prediction split: observed graph plus labeled train/test
// pairs (label 1 = true edge, 0 = sampled non-edge).
type Task struct {
	// Observed is the graph with test-positive edges removed — the only
	// structure any model may use.
	Observed *graph.CSR

	TrainPairs  [][2]int
	TrainLabels []int
	TestPairs   [][2]int
	TestLabels  []int
}

// NewTask hides testFrac of the edges as test positives and trainFrac as
// train positives (disjoint sets, BOTH removed from the observed graph —
// if train positives stayed visible, a walk model would learn the "direct
// edge present" shortcut that cannot transfer to held-out test edges), and
// samples one negative (non-edge) per positive for both splits.
func NewTask(g *graph.CSR, testFrac, trainFrac float64, rng *rand.Rand) (*Task, error) {
	if !g.Undirected() {
		return nil, fmt.Errorf("linkpred: requires an undirected graph")
	}
	if testFrac <= 0 || trainFrac <= 0 || testFrac+trainFrac >= 1 {
		return nil, fmt.Errorf("linkpred: need testFrac, trainFrac > 0 with sum < 1, got %v/%v", testFrac, trainFrac)
	}
	edges := g.UndirectedEdges()
	if len(edges) < 10 {
		return nil, fmt.Errorf("linkpred: graph too small (%d edges)", len(edges))
	}
	perm := tensor.Perm(len(edges), rng)
	nTest := max(1, int(testFrac*float64(len(edges))))
	nTrain := max(1, int(trainFrac*float64(len(edges))))
	t := &Task{}
	b := graph.NewBuilder(g.N)
	for i, pi := range perm {
		e := edges[pi]
		switch {
		case i < nTest:
			t.TestPairs = append(t.TestPairs, [2]int{e.U, e.V})
			t.TestLabels = append(t.TestLabels, 1)
		case i < nTest+nTrain:
			t.TrainPairs = append(t.TrainPairs, [2]int{e.U, e.V})
			t.TrainLabels = append(t.TrainLabels, 1)
		default:
			b.AddWeightedEdge(e.U, e.V, e.W)
		}
	}
	observed, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("linkpred: observed graph: %w", err)
	}
	t.Observed = observed
	// Negatives: uniform non-edges of the FULL graph (so negatives are
	// genuinely false for both splits).
	sampleNeg := func(k int) ([][2]int, error) {
		out := make([][2]int, 0, k)
		for attempts := 0; len(out) < k; attempts++ {
			if attempts > 100*k {
				return nil, fmt.Errorf("linkpred: negative sampling stuck (graph too dense?)")
			}
			u, v := rng.IntN(g.N), rng.IntN(g.N)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			out = append(out, [2]int{u, v})
		}
		return out, nil
	}
	trainNeg, err := sampleNeg(len(t.TrainPairs))
	if err != nil {
		return nil, err
	}
	for _, p := range trainNeg {
		t.TrainPairs = append(t.TrainPairs, p)
		t.TrainLabels = append(t.TrainLabels, 0)
	}
	testNeg, err := sampleNeg(len(t.TestPairs))
	if err != nil {
		return nil, err
	}
	for _, p := range testNeg {
		t.TestPairs = append(t.TestPairs, p)
		t.TestLabels = append(t.TestLabels, 0)
	}
	return t, nil
}

// CommonNeighbors scores a pair by the number of shared neighbors in the
// observed graph — the heuristic baseline every subgraph model must beat.
// Pairs score independently into disjoint out[i] slots, so the loop chunks
// over internal/par with output bitwise identical to the sequential scan.
func CommonNeighbors(g *graph.CSR, pairs [][2]int) []float64 {
	out := make([]float64, len(pairs))
	par.Range(len(pairs), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pairs[i]
			a, b := g.Neighbors(p[0]), g.Neighbors(p[1])
			ai, bi := 0, 0
			count := 0
			for ai < len(a) && bi < len(b) {
				switch {
				case a[ai] == b[bi]:
					count++
					ai++
					bi++
				case a[ai] < b[bi]:
					ai++
				default:
					bi++
				}
			}
			out[i] = float64(count)
		}
	})
	return out
}

// WalkFeatureModel is the SUREL-style predictor.
type WalkFeatureModel struct {
	store *subgraph.WalkStore
	net   *nn.Sequential
	dim   int // pooled feature length
}

// Config controls the walk store and head.
type Config struct {
	Walks  int // walks per endpoint
	Length int // walk length
	Hidden int
	Epochs int
	LR     float64
	Seed   uint64
}

// DefaultConfig returns the settings used by the tests and example.
func DefaultConfig() Config {
	return Config{Walks: 40, Length: 3, Hidden: 32, Epochs: 60, LR: 0.01, Seed: 1}
}

// NewWalkFeatureModel builds the store over the observed graph.
func NewWalkFeatureModel(t *Task, cfg Config) (*WalkFeatureModel, error) {
	ws, err := subgraph.NewWalkStore(t.Observed, subgraph.WalkStoreConfig{Walks: cfg.Walks, Length: cfg.Length})
	if err != nil {
		return nil, fmt.Errorf("linkpred: walk store: %w", err)
	}
	// Pooled features: mean joint profile (2(L+1) columns) plus four
	// interaction scalars (common-node count, Jaccard, sum and max of
	// visiting-mass products).
	return &WalkFeatureModel{store: ws, dim: 2*(cfg.Length+1) + 4}, nil
}

// pairFeatures joins the endpoints' walk sets and pools the joint landing
// profiles into a fixed-length vector: the mean of each profile column,
// plus symmetric interaction scalars over each node's TOTAL visiting mass
// from u and from v — common-node count, Jaccard overlap, and the sum and
// max of mass products. The direct-edge signal lives in cross-step visits
// (u's step-1 walks land on v, whose own step-0 mass is 1), so interactions
// must compare total masses, not per-step columns.
func (m *WalkFeatureModel) pairFeatures(u, v int, rng *rand.Rand) ([]float64, error) {
	if err := m.store.Preprocess([]int{u, v}, rng); err != nil {
		return nil, err
	}
	jr, err := m.store.Join(u, v)
	if err != nil {
		return nil, err
	}
	cols := jr.Features.Cols // 2(L+1)
	half := cols / 2
	out := make([]float64, cols+4)
	n := float64(len(jr.Nodes))
	var common, sumProd, maxProd float64
	var fromU, fromV float64
	for i := 0; i < jr.Features.Rows; i++ {
		row := jr.Features.Row(i)
		var massU, massV float64
		for j := 0; j < half; j++ {
			out[j] += row[j] / n
			out[half+j] += row[half+j] / n
			massU += row[j]
			massV += row[half+j]
		}
		if massU > 0 {
			fromU++
		}
		if massV > 0 {
			fromV++
		}
		if massU > 0 && massV > 0 {
			common++
		}
		prod := massU * massV
		sumProd += prod
		if prod > maxProd {
			maxProd = prod
		}
	}
	out[cols] = common
	union := fromU + fromV - common
	if union > 0 {
		out[cols+1] = common / union
	}
	out[cols+2] = sumProd
	out[cols+3] = maxProd
	return out, nil
}

// featureMatrix assembles features for a pair list.
func (m *WalkFeatureModel) featureMatrix(pairs [][2]int, rng *rand.Rand) (*tensor.Matrix, error) {
	x := tensor.New(len(pairs), m.dim)
	for i, p := range pairs {
		f, err := m.pairFeatures(p[0], p[1], rng)
		if err != nil {
			return nil, fmt.Errorf("linkpred: pair (%d,%d): %w", p[0], p[1], err)
		}
		copy(x.Row(i), f)
	}
	return x, nil
}

// Fit trains the MLP head on the task's train pairs and returns the train
// AUC.
func (m *WalkFeatureModel) Fit(t *Task, cfg Config) (float64, error) {
	rng := tensor.NewRand(cfg.Seed)
	x, err := m.featureMatrix(t.TrainPairs, rng)
	if err != nil {
		return 0, err
	}
	m.net = nn.NewMLP(nn.MLPConfig{In: m.dim, Hidden: []int{cfg.Hidden}, Out: 2, Bias: true}, rng)
	opt := nn.NewAdam(cfg.LR)
	// Fixed-epoch full-batch schedule driven by the shared engine; the task
	// has no validation split, so Validate is a constant and Patience stays 0.
	_, err = train.Run(train.Config{Epochs: cfg.Epochs}, train.Spec{
		Source: train.FullBatch{},
		Step: func(train.Batch) error {
			logits := m.net.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy(logits, t.TrainLabels)
			m.net.Backward(grad)
			opt.Step(m.net.Params())
			return nil
		},
		Validate: func() (float64, error) { return 0, nil },
	})
	if err != nil {
		return 0, err
	}
	scores := m.Scores(x)
	return metrics.AUC(scores, t.TrainLabels), nil
}

// Scores returns the positive-class probability for each feature row.
func (m *WalkFeatureModel) Scores(x *tensor.Matrix) []float64 {
	probs := nn.Softmax(m.net.Forward(x, false))
	out := make([]float64, probs.Rows)
	for i := range out {
		out[i] = probs.At(i, 1)
	}
	return out
}

// Evaluate computes test AUC.
func (m *WalkFeatureModel) Evaluate(t *Task, cfg Config) (float64, error) {
	if m.net == nil {
		return 0, fmt.Errorf("linkpred: Evaluate before Fit")
	}
	rng := tensor.NewRand(cfg.Seed + 1)
	x, err := m.featureMatrix(t.TestPairs, rng)
	if err != nil {
		return 0, err
	}
	return metrics.AUC(m.Scores(x), t.TestLabels), nil
}
