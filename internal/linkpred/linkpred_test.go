package linkpred

import (
	"testing"

	"scalegnn/internal/graph"
	"scalegnn/internal/metrics"
	"scalegnn/internal/tensor"
)

// testTask builds a link-prediction split on a community-structured SBM:
// communities give edges the local structure (triadic closure) that makes
// link prediction learnable — pure preferential-attachment graphs attach by
// degree, not locality, and are near-chance for any structural predictor.
func testTask(t *testing.T, seed uint64) *Task {
	t.Helper()
	g, _, err := graph.SBM(graph.SBMConfig{
		Nodes: 800, Blocks: 8, AvgDegree: 16, Homophily: 0.9,
	}, tensor.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	task, err := NewTask(g, 0.15, 0.3, tensor.NewRand(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewTaskSplit(t *testing.T) {
	g := graph.BarabasiAlbert(500, 3, tensor.NewRand(1))
	task, err := NewTask(g, 0.2, 0.3, tensor.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	// Observed graph lost both test and train positives.
	m := g.NumEdges() / 2
	wantObserved := m - int(0.2*float64(m)) - int(0.3*float64(m))
	if got := task.Observed.NumEdges() / 2; got != wantObserved {
		t.Errorf("observed edges = %d, want %d", got, wantObserved)
	}
	// Balanced labels in both splits.
	countPos := func(labels []int) int {
		c := 0
		for _, y := range labels {
			c += y
		}
		return c
	}
	if 2*countPos(task.TrainLabels) != len(task.TrainLabels) {
		t.Error("train labels unbalanced")
	}
	if 2*countPos(task.TestLabels) != len(task.TestLabels) {
		t.Error("test labels unbalanced")
	}
	// All positives must be absent from the observed graph but present in
	// the original; negatives absent from the original.
	check := func(pairs [][2]int, labels []int) {
		t.Helper()
		for i, p := range pairs {
			if labels[i] == 1 {
				if task.Observed.HasEdge(p[0], p[1]) {
					t.Fatal("positive leaked into observed graph")
				}
				if !g.HasEdge(p[0], p[1]) {
					t.Fatal("positive is not a real edge")
				}
			} else if g.HasEdge(p[0], p[1]) {
				t.Fatal("negative sample is a real edge")
			}
		}
	}
	check(task.TestPairs, task.TestLabels)
	check(task.TrainPairs, task.TrainLabels)
}

func TestNewTaskValidation(t *testing.T) {
	g := graph.BarabasiAlbert(100, 3, tensor.NewRand(3))
	rng := tensor.NewRand(4)
	if _, err := NewTask(g, 0, 0.5, rng); err == nil {
		t.Error("test frac 0 should error")
	}
	if _, err := NewTask(g, 0.5, 0, rng); err == nil {
		t.Error("train frac 0 should error")
	}
	if _, err := NewTask(g, 0.6, 0.6, rng); err == nil {
		t.Error("fractions summing above 1 should error")
	}
	b := graph.NewBuilder(3)
	b.Directed = true
	b.AddEdge(0, 1)
	if _, err := NewTask(b.MustBuild(), 0.2, 0.3, rng); err == nil {
		t.Error("directed graph should error")
	}
	tiny := graph.Path(4)
	if _, err := NewTask(tiny, 0.2, 0.3, rng); err == nil {
		t.Error("tiny graph should error")
	}
}

func TestCommonNeighborsBeatsChance(t *testing.T) {
	task := testTask(t, 5)
	scores := CommonNeighbors(task.Observed, task.TestPairs)
	auc := metrics.AUC(scores, task.TestLabels)
	if auc < 0.6 {
		t.Errorf("common-neighbors AUC %v; expected well above 0.5 on a modular SBM", auc)
	}
}

func TestWalkFeatureModelBeatsChanceAndFitsTrain(t *testing.T) {
	task := testTask(t, 7)
	cfg := DefaultConfig()
	m, err := NewWalkFeatureModel(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainAUC, err := m.Fit(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trainAUC < 0.75 {
		t.Errorf("train AUC %v; model failed to fit", trainAUC)
	}
	testAUC, err := m.Evaluate(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if testAUC < 0.7 {
		t.Errorf("test AUC %v", testAUC)
	}
}

func TestWalkModelCompetitiveWithHeuristic(t *testing.T) {
	task := testTask(t, 11)
	cfg := DefaultConfig()
	m, err := NewWalkFeatureModel(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(task, cfg); err != nil {
		t.Fatal(err)
	}
	walkAUC, err := m.Evaluate(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cnAUC := metrics.AUC(CommonNeighbors(task.Observed, task.TestPairs), task.TestLabels)
	// The learned walk model must be at least competitive with the
	// heuristic (it sees strictly more structure).
	if walkAUC < cnAUC-0.05 {
		t.Errorf("walk model AUC %.3f well below common-neighbors %.3f", walkAUC, cnAUC)
	}
}

func TestEvaluateBeforeFitErrors(t *testing.T) {
	task := testTask(t, 13)
	m, err := NewWalkFeatureModel(task, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(task, DefaultConfig()); err == nil {
		t.Error("Evaluate before Fit should error")
	}
}

func TestPairFeaturesSymmetricLayout(t *testing.T) {
	task := testTask(t, 17)
	cfg := DefaultConfig()
	m, err := NewWalkFeatureModel(task, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRand(19)
	f, err := m.pairFeatures(1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != m.dim {
		t.Fatalf("feature length %d, want %d", len(f), m.dim)
	}
	// Landing profiles are probabilities: all features non-negative.
	for i, v := range f {
		if v < 0 {
			t.Fatalf("feature %d = %v < 0", i, v)
		}
	}
}
