// Package metrics provides the evaluation harness shared by every
// experiment: classification quality metrics, wall-clock timing sections,
// and the resident-float accounting that substitutes for GPU memory
// measurement (see DESIGN.md "Substitutions").
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"scalegnn/internal/obs"
)

// Accuracy returns the fraction of predictions equal to the labels.
func Accuracy(pred, labels []int) float64 {
	if len(pred) != len(labels) {
		panic(fmt.Sprintf("metrics: %d predictions vs %d labels", len(pred), len(labels)))
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// Confusion builds the numClasses x numClasses confusion matrix
// (rows = true class, cols = predicted class). Out-of-range entries are
// ignored.
func Confusion(pred, labels []int, numClasses int) [][]int {
	m := make([][]int, numClasses)
	for i := range m {
		m[i] = make([]int, numClasses)
	}
	for i, p := range pred {
		y := labels[i]
		if y >= 0 && y < numClasses && p >= 0 && p < numClasses {
			m[y][p]++
		}
	}
	return m
}

// MacroF1 returns the unweighted mean of per-class F1 scores. Classes with
// no true or predicted instances contribute F1 = 0 (the strict convention).
func MacroF1(pred, labels []int, numClasses int) float64 {
	if numClasses == 0 {
		return 0
	}
	cm := Confusion(pred, labels, numClasses)
	var sum float64
	for c := 0; c < numClasses; c++ {
		tp := cm[c][c]
		var fp, fn int
		for k := 0; k < numClasses; k++ {
			if k != c {
				fp += cm[k][c]
				fn += cm[c][k]
			}
		}
		if tp == 0 {
			continue // precision/recall both 0 → F1 0
		}
		precision := float64(tp) / float64(tp+fp)
		recall := float64(tp) / float64(tp+fn)
		sum += 2 * precision * recall / (precision + recall)
	}
	return sum / float64(numClasses)
}

// Timer accumulates named wall-clock sections; every experiment reports
// through one so that "propagation time" vs "training time" splits (the
// decoupled-GNN measurement of §3.1.3) are consistent.
type Timer struct {
	sections map[string]time.Duration
	order    []string
}

// NewTimer returns an empty timer.
func NewTimer() *Timer {
	return &Timer{sections: make(map[string]time.Duration)}
}

// Section times fn under the given name, accumulating across calls. The
// stopwatch is obs.Section, the repo's single timing substrate: when a
// tracer is installed the section also lands in the trace timeline under
// the same name, so timer totals and span durations can never disagree.
func (t *Timer) Section(name string, fn func()) {
	t.Add(name, obs.Section(name, fn))
}

// Add accumulates an externally measured duration.
func (t *Timer) Add(name string, d time.Duration) {
	if _, ok := t.sections[name]; !ok {
		t.order = append(t.order, name)
	}
	t.sections[name] += d
}

// Get returns the accumulated duration of a section (0 if absent).
func (t *Timer) Get(name string) time.Duration { return t.sections[name] }

// Names returns section names in first-use order.
func (t *Timer) Names() []string { return append([]string(nil), t.order...) }

// Total returns the sum over all sections.
func (t *Timer) Total() time.Duration {
	var total time.Duration
	for _, d := range t.sections {
		total += d
	}
	return total
}

// String formats all sections.
func (t *Timer) String() string {
	out := ""
	for i, name := range t.order {
		if i > 0 {
			out += "  "
		}
		out += fmt.Sprintf("%s=%v", name, t.sections[name].Round(time.Microsecond))
	}
	return out
}

// FloatTracker is the resident-float accountant: models report the peak
// number of float64 values simultaneously held during one training step.
// This is the CPU-world proxy for the GPU-memory bottleneck of §3.1.3 —
// full-batch models hold O(n·d·L) floats, mini-batch models O(batch·d·L).
type FloatTracker struct {
	current int
	peak    int
}

// Alloc records acquiring n resident floats.
func (ft *FloatTracker) Alloc(n int) {
	ft.current += n
	if ft.current > ft.peak {
		ft.peak = ft.current
	}
}

// Free records releasing n resident floats.
func (ft *FloatTracker) Free(n int) {
	ft.current -= n
	if ft.current < 0 {
		ft.current = 0
	}
}

// Peak returns the high-water mark.
func (ft *FloatTracker) Peak() int { return ft.peak }

// Current returns the currently tracked count.
func (ft *FloatTracker) Current() int { return ft.current }

// Reset clears both counters.
func (ft *FloatTracker) Reset() { ft.current, ft.peak = 0, 0 }

// Quantiles returns the requested quantiles (e.g. 0.5, 0.99) of a sample
// slice, by sorting a copy. Used for per-node accuracy breakdowns.
func Quantiles(samples []float64, qs ...float64) []float64 {
	if len(samples) == 0 {
		return make([]float64, len(qs))
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		idx := int(q * float64(len(s)-1))
		out[i] = s[idx]
	}
	return out
}

// MeanStd returns the mean and (population) standard deviation.
func MeanStd(samples []float64) (mean, std float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	for _, v := range samples {
		mean += v
	}
	mean /= float64(len(samples))
	for _, v := range samples {
		d := v - mean
		std += d * d
	}
	std /= float64(len(samples))
	return mean, math.Sqrt(std)
}

// AUC computes the area under the ROC curve for binary labels (1 =
// positive) given real-valued scores, handling score ties by the standard
// midrank convention. Returns 0.5 when either class is empty — the
// link-prediction metric of the subgraph-based systems (§3.3.3).
func AUC(scores []float64, labels []int) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores vs %d labels", len(scores), len(labels)))
	}
	type pair struct {
		s float64
		y int
	}
	ps := make([]pair, len(scores))
	nPos, nNeg := 0, 0
	for i, s := range scores {
		ps[i] = pair{s, labels[i]}
		if labels[i] == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Midranks over tied scores.
	var sumPosRank float64
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		midrank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			if ps[k].y == 1 {
				sumPosRank += midrank
			}
		}
		i = j
	}
	return (sumPosRank - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}
