package metrics

import (
	"math"
	"testing"
	"time"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestAccuracyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestConfusion(t *testing.T) {
	cm := Confusion([]int{0, 1, 1, 0}, []int{0, 1, 0, 1}, 2)
	if cm[0][0] != 1 || cm[1][1] != 1 || cm[0][1] != 1 || cm[1][0] != 1 {
		t.Errorf("confusion = %v", cm)
	}
	// Out-of-range ignored.
	cm = Confusion([]int{5}, []int{0}, 2)
	if cm[0][0] != 0 {
		t.Error("out-of-range prediction should be ignored")
	}
}

func TestMacroF1Perfect(t *testing.T) {
	pred := []int{0, 1, 2, 0, 1, 2}
	if got := MacroF1(pred, pred, 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect F1 = %v", got)
	}
}

func TestMacroF1KnownValue(t *testing.T) {
	// Class 0: tp=1, fp=1, fn=0 → P=0.5, R=1, F1=2/3.
	// Class 1: tp=0 → F1=0.
	pred := []int{0, 0}
	labels := []int{0, 1}
	want := (2.0 / 3.0) / 2
	if got := MacroF1(pred, labels, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("MacroF1 = %v, want %v", got, want)
	}
}

func TestMacroF1EmptyClasses(t *testing.T) {
	if MacroF1(nil, nil, 0) != 0 {
		t.Error("0 classes should be 0")
	}
}

func TestTimerSections(t *testing.T) {
	tm := NewTimer()
	tm.Section("a", func() { time.Sleep(time.Millisecond) })
	tm.Add("b", 5*time.Millisecond)
	tm.Add("a", 2*time.Millisecond)
	if tm.Get("a") < 3*time.Millisecond {
		t.Errorf("section a = %v", tm.Get("a"))
	}
	if tm.Get("b") != 5*time.Millisecond {
		t.Errorf("section b = %v", tm.Get("b"))
	}
	names := tm.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if tm.Total() < 8*time.Millisecond {
		t.Errorf("total = %v", tm.Total())
	}
	if tm.String() == "" {
		t.Error("empty String")
	}
}

func TestFloatTracker(t *testing.T) {
	var ft FloatTracker
	ft.Alloc(100)
	ft.Alloc(50)
	if ft.Peak() != 150 || ft.Current() != 150 {
		t.Errorf("peak=%d current=%d", ft.Peak(), ft.Current())
	}
	ft.Free(120)
	if ft.Current() != 30 || ft.Peak() != 150 {
		t.Errorf("after free: peak=%d current=%d", ft.Peak(), ft.Current())
	}
	ft.Free(1000)
	if ft.Current() != 0 {
		t.Error("current should clamp at 0")
	}
	ft.Reset()
	if ft.Peak() != 0 {
		t.Error("reset should clear peak")
	}
}

func TestQuantiles(t *testing.T) {
	s := []float64{5, 1, 3, 2, 4}
	qs := Quantiles(s, 0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Errorf("quantiles = %v", qs)
	}
	// Out-of-range clamped; empty input safe.
	qs = Quantiles(s, -1, 2)
	if qs[0] != 1 || qs[1] != 5 {
		t.Errorf("clamped quantiles = %v", qs)
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Error("empty quantiles should be 0")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 || math.Abs(std-2) > 1e-12 {
		t.Errorf("mean=%v std=%v, want 5, 2", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty MeanStd should be 0, 0")
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	// Perfect separation.
	if got := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []int{1, 1, 0, 0}); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	// Perfectly wrong.
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []int{1, 1, 0, 0}); got != 0 {
		t.Errorf("inverted AUC = %v", got)
	}
	// All ties: 0.5 by midrank convention.
	if got := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{1, 1, 0, 0}); got != 0.5 {
		t.Errorf("tied AUC = %v", got)
	}
	// Degenerate class: 0.5.
	if got := AUC([]float64{1, 2}, []int{1, 1}); got != 0.5 {
		t.Errorf("single-class AUC = %v", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won = (0.8>0.6, 0.8>0.2,
	// 0.4<0.6, 0.4>0.2) = 3/4.
	got := AUC([]float64{0.8, 0.4, 0.6, 0.2}, []int{1, 1, 0, 0})
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
}

func TestAUCPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	AUC([]float64{1}, []int{1, 0})
}
