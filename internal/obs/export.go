package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
)

// sortSpans orders records by start offset, breaking ties by ID (allocation
// order), so exported timelines are deterministic for a fixed set of spans.
func sortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
}

// WriteJSONL writes every completed span as one JSON object per line,
// ordered by start offset. The format is self-describing — each line holds
// id, parent, name, start_ns, dur_ns, and the optional label/count — so a
// timeline can be reassembled (or flame-graphed) by any JSONL consumer.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	spans := t.Snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline separator
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
