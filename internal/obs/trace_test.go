package obs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"scalegnn/internal/obs"
)

const sampleTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

func TestParseTraceparentValid(t *testing.T) {
	tc, ok := obs.ParseTraceparent(sampleTraceparent)
	if !ok {
		t.Fatal("sample traceparent rejected")
	}
	if got := tc.Trace.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %q", got)
	}
	if tc.Parent != 0x00f067aa0ba902b7 {
		t.Errorf("parent = %x, want f067aa0ba902b7", tc.Parent)
	}
	if !tc.Valid() {
		t.Error("parsed context should be Valid")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"short":             "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",
		"long":              sampleTraceparent + "0",
		"version 01":        "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"uppercase hex":     "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		"zero trace id":     "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero parent id":    "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"bad separator":     "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"non-hex trace":     "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",
		"non-hex parent":    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bz-01",
		"non-hex flags":     "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",
		"spaces for dashes": "00 4bf92f3577b34da6a3ce929d0e0e4736 00f067aa0ba902b7 01",
	}
	for name, h := range cases {
		if tc, ok := obs.ParseTraceparent(h); ok {
			t.Errorf("%s: %q accepted as %+v, want rejection", name, h, tc)
		}
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	want, ok := obs.ParseTraceparent(sampleTraceparent)
	if !ok {
		t.Fatal("sample traceparent rejected")
	}
	h := obs.FormatTraceparent(want.Trace, want.Parent)
	if h != sampleTraceparent {
		t.Fatalf("round trip: %q != %q", h, sampleTraceparent)
	}
	got, ok := obs.ParseTraceparent(h)
	if !ok || got != want {
		t.Fatalf("re-parse: %+v ok=%v, want %+v", got, ok, want)
	}
}

func TestNewTraceContextMintsDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		tc := obs.NewTraceContext()
		if tc.Trace.IsZero() {
			t.Fatal("minted a zero trace id")
		}
		if tc.Parent != 0 {
			t.Fatalf("minted context has remote parent %x", tc.Parent)
		}
		id := tc.Trace.String()
		if seen[id] {
			t.Fatalf("duplicate trace id %s after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestStartRequestMintsFreshTrace(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	sp := obs.StartRequest("req", obs.TraceContext{})
	if !sp.Active() {
		t.Fatal("request span not active with tracer installed")
	}
	if sp.TraceID().IsZero() {
		t.Fatal("zero TraceContext should mint a fresh trace id")
	}
	sp.End()

	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d spans, want 1", len(recs))
	}
	if recs[0].Trace != sp.TraceID().String() {
		t.Errorf("record trace %q != span trace %q", recs[0].Trace, sp.TraceID())
	}
	if recs[0].Remote != "" {
		t.Errorf("minted trace has remote parent %q, want none", recs[0].Remote)
	}
}

func TestStartRequestInheritsInboundTrace(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	tc, _ := obs.ParseTraceparent(sampleTraceparent)
	sp := obs.StartRequest("req", tc)
	child := sp.Child("score")
	if child.TraceID() != tc.Trace {
		t.Errorf("child trace %s, want inherited %s", child.TraceID(), tc.Trace)
	}
	child.End()
	sp.End()

	byName := map[string]obs.SpanRecord{}
	for _, r := range tr.Snapshot() {
		byName[r.Name] = r
	}
	req := byName["req"]
	if req.Trace != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("request trace = %q", req.Trace)
	}
	if req.Remote != "00f067aa0ba902b7" {
		t.Errorf("remote parent = %q, want 00f067aa0ba902b7", req.Remote)
	}
	if got := byName["score"].Trace; got != req.Trace {
		t.Errorf("child record trace %q != parent %q", got, req.Trace)
	}
	if byName["score"].Remote != "" {
		t.Errorf("child carries remote parent %q, want none", byName["score"].Remote)
	}
}

func TestStartRequestDisabledIsInert(t *testing.T) {
	obs.SetTracer(nil)
	tc, _ := obs.ParseTraceparent(sampleTraceparent)
	sp := obs.StartRequest("req", tc)
	if sp.Active() {
		t.Fatal("request span active with no tracer")
	}
	if sp.SpanID() != 0 || !sp.TraceID().IsZero() {
		t.Error("disabled request span leaked identity")
	}
	// All annotations must be guarded no-ops.
	sp.Link(7)
	sp.SetWait(time.Second)
	sp.SetCount(3)
	if d := sp.End(); d != 0 {
		t.Errorf("disabled End returned %v, want 0", d)
	}
}

func TestSpanLinksAndWaitInRecord(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	batch := obs.Start("batch")
	sp := obs.StartRequest("req", obs.TraceContext{})
	sp.Link(batch.SpanID())
	sp.Link(0) // 0 is a disabled span's id; must be dropped
	sp.SetWait(123 * time.Microsecond)
	sp.End()
	batch.End()

	byName := map[string]obs.SpanRecord{}
	for _, r := range tr.Snapshot() {
		byName[r.Name] = r
	}
	req := byName["req"]
	if len(req.Links) != 1 || req.Links[0] != batch.SpanID() {
		t.Errorf("links = %v, want [%d]", req.Links, batch.SpanID())
	}
	if req.Wait != 123*time.Microsecond {
		t.Errorf("wait = %v, want 123µs", req.Wait)
	}
}

func TestContextCarriesSpan(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	sp := obs.StartRequest("req", obs.TraceContext{})
	ctx := obs.ContextWithSpan(context.Background(), &sp)
	got := obs.SpanFromContext(ctx)
	if got != &sp {
		t.Fatal("SpanFromContext did not return the attached span")
	}
	got.Link(99)
	sp.End()
	recs := tr.Snapshot()
	if len(recs) != 1 || len(recs[0].Links) != 1 || recs[0].Links[0] != 99 {
		t.Errorf("annotation through context lost: %+v", recs)
	}
}

func TestSpanFromContextNeverNil(t *testing.T) {
	got := obs.SpanFromContext(context.Background())
	if got == nil {
		t.Fatal("SpanFromContext returned nil")
	}
	if got.Active() {
		t.Error("fallback span should be disabled")
	}
	// The shared fallback must tolerate concurrent annotation no-ops.
	got.Link(1)
	got.SetWait(time.Second)
	got.End()
}

func TestJSONLCarriesTraceFields(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	tc, _ := obs.ParseTraceparent(sampleTraceparent)
	batch := obs.Start("batch")
	sp := obs.StartRequest("req", tc)
	sp.Link(batch.SpanID())
	sp.SetWait(time.Millisecond)
	sp.End()
	batch.Link(2) // fan-in back-link
	batch.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var sawTrace, sawLinks, sawRemote, sawWait bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec["trace_id"] == "4bf92f3577b34da6a3ce929d0e0e4736" {
			sawTrace = true
		}
		if _, ok := rec["links"]; ok {
			sawLinks = true
		}
		if rec["remote_parent"] == "00f067aa0ba902b7" {
			sawRemote = true
		}
		if w, ok := rec["wait_ns"].(float64); ok && w == float64(time.Millisecond) {
			sawWait = true
		}
	}
	if !sawTrace || !sawLinks || !sawRemote || !sawWait {
		t.Errorf("JSONL missing fields: trace=%v links=%v remote=%v wait=%v\n%s",
			sawTrace, sawLinks, sawRemote, sawWait, buf.String())
	}
}
