package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
)

// trace.go is the request-scoped half of the tracer: 128-bit trace ids in
// the W3C Trace Context wire format, so one slow /predict can be followed
// from the client's traceparent header, through the serving dispatcher's
// batch fan-in, into the JSONL timeline — and correlated with structured
// log lines by the same trace_id.
//
// Process-scoped spans (obs.Start) stay trace-less: a training run that
// wants a trace id starts its root with StartRequest, and every Child
// inherits it.

// TraceID is a W3C Trace Context trace-id: 16 random bytes identifying one
// request end-to-end across processes. The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero trace id (the W3C
// spec reserves it for "absent").
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex digits — the wire and JSONL
// spelling.
func (id TraceID) String() string {
	var b [32]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// TraceContext is a span's trace association: the trace it belongs to and,
// when the trace was started by a remote caller, that caller's span id
// (the traceparent parent-id). The zero value means "mint a fresh trace".
type TraceContext struct {
	Trace TraceID
	// Parent is the remote parent span id (0 when this process roots the
	// trace). W3C parent-ids are 8 bytes, carried here as a uint64.
	Parent uint64
}

// Valid reports whether the context names an actual trace.
func (tc TraceContext) Valid() bool { return !tc.Trace.IsZero() }

// NewTraceContext mints a fresh 128-bit trace id. IDs come from
// crypto/rand (never from the seeded experiment RNGs: trace identity must
// not consume — or be predictable from — model randomness).
func NewTraceContext() TraceContext {
	var tc TraceContext
	// crypto/rand.Read cannot fail on the platforms this repo targets
	// (getrandom / urandom); on the impossible failure the id stays zero
	// and the span simply goes untraced.
	_, _ = cryptorand.Read(tc.Trace[:])
	if tc.Trace.IsZero() {
		tc.Trace[15] = 1 // all-zero is reserved for "absent"
	}
	return tc
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). It accepts
// only version 00 with strict lowercase hex and rejects the all-zero
// trace-id and parent-id, per the spec. ok is false on any malformation —
// the caller then mints a fresh trace rather than propagating garbage.
func ParseTraceparent(h string) (tc TraceContext, ok bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	for _, i := range []int{53, 54} { // flags must at least be hex
		if hexVal(h[i]) < 0 {
			return TraceContext{}, false
		}
	}
	for i := 0; i < 16; i++ {
		hi, lo := hexVal(h[3+2*i]), hexVal(h[4+2*i])
		if hi < 0 || lo < 0 {
			return TraceContext{}, false
		}
		tc.Trace[i] = byte(hi<<4 | lo)
	}
	for i := 36; i < 52; i++ {
		v := hexVal(h[i])
		if v < 0 {
			return TraceContext{}, false
		}
		tc.Parent = tc.Parent<<4 | uint64(v)
	}
	if tc.Trace.IsZero() || tc.Parent == 0 {
		return TraceContext{}, false
	}
	return tc, true
}

// FormatTraceparent renders the outbound traceparent header for a trace
// and the local span acting as parent, with the sampled flag set.
func FormatTraceparent(trace TraceID, span uint64) string {
	return "00-" + trace.String() + "-" + hexUint64(span) + "-01"
}

// hexVal decodes one strict-lowercase hex digit (-1 on anything else).
func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	}
	return -1
}

// hexUint64 renders v as 16 lowercase hex digits (the W3C span-id width).
func hexUint64(v uint64) string {
	var b [16]byte
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// StartRequest begins a request-scoped root span on the process-wide
// tracer: a span that belongs to a trace. A zero TraceContext mints a
// fresh trace id; a parsed inbound traceparent continues the caller's
// trace (the remote parent id lands in the record's remote_parent field).
// With no tracer installed it returns the disabled span without reading
// the clock or minting an id — the same overhead contract as Start.
func StartRequest(name string, tc TraceContext) Span {
	t := active.Load()
	if t == nil {
		return Span{}
	}
	if tc.Trace.IsZero() {
		tc = NewTraceContext()
	}
	sp := t.Start(name)
	sp.trace = tc.Trace
	sp.remote = tc.Parent
	return sp
}

// spanCtxKey keys the request span in a context.Context.
type spanCtxKey struct{}

// noSpan is what SpanFromContext returns when no span was attached. It is
// shared and concurrently reachable, which is safe precisely because every
// mutating Span method is a no-op when tr is nil.
var noSpan Span

// ContextWithSpan attaches a request span to the context so layers below
// the HTTP handler (the serving engine) can annotate it — link the batch
// span, record queue wait — without threading a Span through every
// signature.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the attached request span, or a disabled span on
// which every method no-ops. Never nil.
func SpanFromContext(ctx context.Context) *Span {
	if sp, ok := ctx.Value(spanCtxKey{}).(*Span); ok && sp != nil {
		return sp
	}
	return &noSpan
}
