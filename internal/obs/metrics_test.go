package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"scalegnn/internal/obs"
	"scalegnn/internal/par"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("x.count")
	c.Add(3)
	c.Add(4)
	if c.Value() != 7 {
		t.Errorf("counter = %d, want 7", c.Value())
	}
	if reg.Counter("x.count") != c {
		t.Error("re-registration returned a different counter")
	}
	g := reg.Gauge("x.gauge")
	g.Set(1.5)
	g.Set(-2.25)
	if g.Value() != -2.25 {
		t.Errorf("gauge = %v, want -2.25", g.Value())
	}

	var nilC *obs.Counter
	nilC.Add(1) // must not panic
	if nilC.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var nilG *obs.Gauge
	nilG.Set(1)
	if nilG.Value() != 0 {
		t.Error("nil gauge has a value")
	}
}

func TestHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 556.2; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %v, want 10 (3rd of 5 obs lands in (1,10] bucket)", q)
	}
	// The p99 observation lands in the overflow bucket; the quantile must
	// report the tracked maximum (500), never +Inf — serve-side SLO math
	// multiplies and compares these values.
	if q := h.Quantile(0.99); q != 500 {
		t.Errorf("p99 = %v, want 500 (max observation, overflow bucket)", q)
	}
	if m := h.Max(); m != 500 {
		t.Errorf("max = %v, want 500", m)
	}
	var empty *obs.Histogram
	empty.Observe(1)
	if empty.Quantile(0.5) != 0 || empty.Count() != 0 || empty.Max() != 0 {
		t.Error("nil histogram misbehaves")
	}
}

// TestHistogramConcurrent exercises the lock-free Observe path from
// par.Range workers; the count must be exact. Runs under -race in check.sh.
func TestHistogramConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("conc", obs.DefaultDurationBuckets)
	prev := par.SetMaxWorkers(4)
	defer par.SetMaxWorkers(prev)
	const n = 4096
	par.Range(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			h.Observe(float64(i%100) * 1e-4)
		}
	})
	if h.Count() != n {
		t.Errorf("count = %d, want %d", h.Count(), n)
	}
}

func TestSnapshotAndString(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("a").Add(2)
	reg.Gauge("b").Set(0.5)
	reg.Histogram("h", []float64{1}).Observe(0.25)

	snap := reg.Snapshot()
	if snap["a"] != 2 || snap["b"] != 0.5 || snap["h.count"] != 1 {
		t.Errorf("unexpected snapshot %v", snap)
	}

	// String must be valid JSON (it feeds expvar /debug/vars).
	var decoded map[string]any
	if err := json.Unmarshal([]byte(reg.String()), &decoded); err != nil {
		t.Fatalf("Registry.String not valid JSON: %v\n%s", err, reg.String())
	}
	if decoded["a"].(float64) != 2 {
		t.Errorf("decoded a = %v, want 2", decoded["a"])
	}
}

func TestPublishIsIdempotent(t *testing.T) {
	r1, r2 := obs.NewRegistry(), obs.NewRegistry()
	r1.Counter("only.in.one").Add(1)
	r1.Publish("obs-test-slot")
	r1.Publish("obs-test-slot") // second publish of same registry: no panic
	r2.Counter("only.in.two").Add(2)
	r2.Publish("obs-test-slot") // swaps to r2
}

func TestCounterRefGating(t *testing.T) {
	var ref obs.CounterRef
	ref.Add(5) // unbound: dropped
	reg := obs.NewRegistry()
	c := reg.Counter("gated")
	ref.Bind(c)
	ref.Add(3)
	if c.Value() != 3 {
		t.Errorf("bound counter = %d, want 3 (pre-bind adds dropped)", c.Value())
	}
	ref.Bind(nil)
	ref.Add(10)
	if c.Value() != 3 {
		t.Errorf("unbound ref still incremented: %d", c.Value())
	}

	var gref obs.GaugeRef
	gref.Set(1) // unbound: dropped
	g := reg.Gauge("gated.gauge")
	gref.Bind(g)
	gref.Set(0.75)
	if g.Value() != 0.75 {
		t.Errorf("bound gauge = %v, want 0.75", g.Value())
	}
}

func TestTrainHook(t *testing.T) {
	reg := obs.NewRegistry()
	h := obs.NewTrainHook(reg)
	for b := 0; b < 4; b++ {
		h.OnBatch(obs.BatchEnd{Epoch: 0, Batch: b, Size: 32})
	}
	h.OnEpoch(obs.EpochEnd{Epoch: 0, ValAcc: 0.8, Improved: true, Best: 0.8, Elapsed: 10 * time.Millisecond})
	h.OnBatch(obs.BatchEnd{Epoch: 1, Batch: 0, Size: 32})
	h.OnEpoch(obs.EpochEnd{Epoch: 1, ValAcc: 0.7, Best: 0.8, Elapsed: 20 * time.Millisecond})

	snap := reg.Snapshot()
	checks := map[string]float64{
		"train.batches":             5,
		"train.epochs":              2,
		"train.batch_nodes":         160,
		"train.val_acc":             0.7,
		"train.best_val_acc":        0.8,
		"train.epoch_seconds.count": 2,
	}
	for name, want := range checks {
		if got := snap[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if snap["train.batches_per_s"] <= 0 {
		t.Errorf("batches_per_s = %v, want > 0", snap["train.batches_per_s"])
	}
}

func TestServeDebug(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("served.metric").Add(11)
	srv, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	body := httpGet(t, fmt.Sprintf("http://%s/debug/vars", srv.Addr()))
	if !strings.Contains(body, obs.ExpvarName) || !strings.Contains(body, "served.metric") {
		t.Errorf("/debug/vars missing registry: %s", body)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v", err)
	}

	if body := httpGet(t, fmt.Sprintf("http://%s/debug/pprof/", srv.Addr())); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ index missing profiles: %.200s", body)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close body: %v", err)
		}
	}()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return string(b)
}

func TestStartCPUProfile(t *testing.T) {
	path := t.TempDir() + "/cpu.pprof"
	stop, err := obs.StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0.0
	for i := 0; i < 1_000_00; i++ {
		x += math.Sqrt(float64(i))
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
