package obs

import "time"

// BatchEnd is the per-batch training observation payload. It is defined
// here (not in internal/train) so TrainHook can satisfy train.Hook without
// an import cycle: internal/train imports obs for span instrumentation and
// re-exports these types as aliases, so train.Hook's method signatures and
// obs.TrainHook's match exactly.
type BatchEnd struct {
	Epoch int
	Batch int
	// Size is the node count of the batch (0 for full-batch steps).
	Size int
	// Trace is the training run's trace id (zero when the run is untraced),
	// so hook consumers can correlate their own output — log lines, emitted
	// events — with the run's span timeline.
	Trace TraceID
}

// EpochEnd is the per-epoch training observation payload.
type EpochEnd struct {
	Epoch  int
	ValAcc float64
	// Improved reports whether this epoch set a new validation best.
	Improved bool
	Best     float64
	// Elapsed is wall-clock time since training started.
	Elapsed time.Duration
	// Trace is the training run's trace id (zero when untraced).
	Trace TraceID
}

// TrainHook streams engine progress into a Registry. It implements
// train.Hook. Per metric name registry (see DESIGN.md "Observability"):
//
//	train.batches        counter  batches completed
//	train.epochs         counter  epochs completed
//	train.batch_nodes    counter  nodes stepped through mini-batches
//	train.batches_per_s  gauge    completed batches / elapsed seconds
//	train.val_acc        gauge    last validation accuracy
//	train.best_val_acc   gauge    best validation accuracy so far
//	train.epoch_seconds  histogram  per-epoch wall time
//
// All instruments are registered at construction; OnBatch is two atomic
// increments plus a gauge store and allocates nothing.
type TrainHook struct {
	batches    *Counter
	epochs     *Counter
	batchNodes *Counter
	rate       *Gauge
	valAcc     *Gauge
	bestVal    *Gauge
	epochSecs  *Histogram

	start       time.Time
	lastElapsed time.Duration
}

// NewTrainHook registers the engine metrics on reg and returns the hook.
func NewTrainHook(reg *Registry) *TrainHook {
	return &TrainHook{
		batches:    reg.Counter("train.batches"),
		epochs:     reg.Counter("train.epochs"),
		batchNodes: reg.Counter("train.batch_nodes"),
		rate:       reg.Gauge("train.batches_per_s"),
		valAcc:     reg.Gauge("train.val_acc"),
		bestVal:    reg.Gauge("train.best_val_acc"),
		epochSecs:  reg.Histogram("train.epoch_seconds", DefaultDurationBuckets),
		start:      time.Now(),
	}
}

// OnBatch implements train.Hook.
func (h *TrainHook) OnBatch(e BatchEnd) {
	h.batches.Add(1)
	h.batchNodes.Add(int64(e.Size))
}

// OnEpoch implements train.Hook.
func (h *TrainHook) OnEpoch(e EpochEnd) {
	h.epochs.Add(1)
	h.valAcc.Set(e.ValAcc)
	h.bestVal.Set(e.Best)
	h.epochSecs.Observe((e.Elapsed - h.lastElapsed).Seconds())
	h.lastElapsed = e.Elapsed
	if s := time.Since(h.start).Seconds(); s > 0 {
		h.rate.Set(float64(h.batches.Value()) / s)
	}
}
