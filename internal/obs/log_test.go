package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"scalegnn/internal/obs"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	obs.NewLogger(&buf, true, nil).Info("hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON handler wrote non-JSON %q: %v", buf.String(), err)
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Errorf("JSON record = %v", rec)
	}

	buf.Reset()
	obs.NewLogger(&buf, false, nil).Info("hello", "k", "v")
	if !strings.Contains(buf.String(), "msg=hello") || !strings.Contains(buf.String(), "k=v") {
		t.Errorf("text record = %q", buf.String())
	}
}

func TestTraceAttrCorrelatesLogs(t *testing.T) {
	tc, _ := obs.ParseTraceparent(sampleTraceparent)
	var buf bytes.Buffer
	obs.NewLogger(&buf, true, nil).Info("served", obs.TraceAttr(tc))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace_id"] != tc.Trace.String() {
		t.Errorf("trace_id = %v, want %s", rec["trace_id"], tc.Trace)
	}
}

func TestTraceAttrEmptyWhenUntraced(t *testing.T) {
	// slog's built-in handlers drop the empty Attr, so an untraced line has
	// no trace_id key at all rather than a zero id.
	var buf bytes.Buffer
	obs.NewLogger(&buf, true, nil).Info("served", obs.TraceAttr(obs.TraceContext{}))
	if strings.Contains(buf.String(), "trace_id") {
		t.Errorf("untraced line leaked trace_id: %q", buf.String())
	}
	buf.Reset()
	obs.NewLogger(&buf, true, nil).Info("served", obs.SpanAttr(nil))
	if strings.Contains(buf.String(), "trace_id") {
		t.Errorf("nil-span line leaked trace_id: %q", buf.String())
	}
}

func TestSpanAttrUsesSpanTrace(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)
	sp := obs.StartRequest("req", obs.TraceContext{})
	defer sp.End()

	var buf bytes.Buffer
	obs.NewLogger(&buf, true, nil).Info("served", obs.SpanAttr(&sp))
	if !strings.Contains(buf.String(), sp.TraceID().String()) {
		t.Errorf("log line %q missing span trace %s", buf.String(), sp.TraceID())
	}
}

func TestRuntimeSampler(t *testing.T) {
	reg := obs.NewRegistry()
	stop := obs.StartRuntimeSampler(reg, time.Hour) // eager first sample only
	if v := reg.Gauge("runtime.goroutines").Value(); v <= 0 {
		t.Errorf("runtime.goroutines = %v after eager sample, want > 0", v)
	}
	if v := reg.Gauge("runtime.heap_alloc_bytes").Value(); v <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %v, want > 0", v)
	}
	stop()
	stop() // idempotent

	// Sampled gauges must render as valid Prometheus output.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("runtime gauges invalid: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "runtime_heap_sys_bytes") {
		t.Errorf("scrape missing runtime gauges:\n%s", buf.String())
	}
}

func TestRuntimeSamplerNilRegistry(t *testing.T) {
	stop := obs.StartRuntimeSampler(nil, time.Second)
	stop() // must be a safe no-op
}
