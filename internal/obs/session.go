package obs

import (
	"fmt"
	"os"
	"time"
)

// Options selects which observability outputs a process run wants. The zero
// value disables everything — StartSession then costs nothing and Close is a
// no-op, so CLIs can wire the flags through unconditionally.
type Options struct {
	// TraceOut, when non-empty, installs a process-wide tracer and writes
	// the completed span timeline to this path as JSONL on Close.
	TraceOut string
	// MetricsAddr, when non-empty, serves the registry via expvar and the
	// pprof handlers on this address (e.g. "localhost:6060").
	MetricsAddr string
	// CPUProfile, when non-empty, captures a CPU profile of the run into
	// this path (stopped on Close).
	CPUProfile string
	// RuntimeEvery sets the runtime sampler period (heap, GC, goroutine
	// gauges). Zero defaults to 10s whenever any output is enabled; negative
	// disables the sampler.
	RuntimeEvery time.Duration
}

// Session is the process-level observability state a CLI run owns: the
// installed tracer, the metrics registry, the debug listener, and the
// profile stopper. Always Close it — that is where trace files are written.
type Session struct {
	// Tracer is non-nil when Options.TraceOut was set.
	Tracer *Tracer
	// Registry is non-nil whenever any output is enabled; callers pass it to
	// the per-package EnableMetrics hooks (tensor, par, train).
	Registry *Registry

	traceFile   *os.File
	srv         *DebugServer
	stopProf    func() error
	stopRuntime func()
}

// StartSession activates the selected outputs. On error, anything already
// activated is torn down before returning.
func StartSession(opt Options) (*Session, error) {
	s := &Session{}
	if opt.TraceOut == "" && opt.MetricsAddr == "" && opt.CPUProfile == "" {
		return s, nil
	}
	s.Registry = NewRegistry()
	if opt.RuntimeEvery >= 0 {
		s.stopRuntime = StartRuntimeSampler(s.Registry, opt.RuntimeEvery)
	}
	if opt.TraceOut != "" {
		// Open eagerly so a bad path fails before the run, not after it.
		f, err := os.Create(opt.TraceOut)
		if err != nil {
			return nil, fmt.Errorf("obs: trace out: %w", err)
		}
		s.Tracer = NewTracer()
		s.traceFile = f
		SetTracer(s.Tracer)
	}
	if opt.MetricsAddr != "" {
		srv, err := ServeDebug(opt.MetricsAddr, s.Registry)
		if err != nil {
			_ = s.teardown() // the listener error is the one worth reporting
			return nil, fmt.Errorf("obs: metrics listener: %w", err)
		}
		s.srv = srv
	}
	if opt.CPUProfile != "" {
		stop, err := StartCPUProfile(opt.CPUProfile)
		if err != nil {
			_ = s.teardown() // the profile error is the one worth reporting
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		s.stopProf = stop
	}
	return s, nil
}

// Addr returns the debug listener's bound address ("" when disabled) —
// useful when MetricsAddr used port 0.
func (s *Session) Addr() string {
	if s.srv == nil {
		return ""
	}
	return s.srv.Addr()
}

// Close stops profiling, writes the trace file, shuts the listener down, and
// uninstalls the tracer. Safe on a zero-output session.
func (s *Session) Close() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.stopProf != nil {
		keep(s.stopProf())
		s.stopProf = nil
	}
	if s.stopRuntime != nil {
		s.stopRuntime()
		s.stopRuntime = nil
	}
	if s.Tracer != nil {
		SetTracer(nil)
		keep(s.Tracer.WriteJSONL(s.traceFile))
		s.Tracer = nil
	}
	if s.traceFile != nil {
		keep(s.traceFile.Close())
		s.traceFile = nil
	}
	keep(s.teardown())
	return firstErr
}

// teardown uninstalls the tracer, closes the trace file, and releases the
// listener (shared by Close and StartSession's error paths; Close writes the
// trace and nils traceFile before calling teardown).
func (s *Session) teardown() error {
	if s.stopRuntime != nil {
		s.stopRuntime()
		s.stopRuntime = nil
	}
	if s.Tracer != nil {
		SetTracer(nil)
		s.Tracer = nil
	}
	if s.traceFile != nil {
		_ = s.traceFile.Close() // error path: the original error is the one worth reporting
		s.traceFile = nil
	}
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	s.srv = nil
	return err
}
