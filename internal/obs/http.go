package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	runtimepprof "runtime/pprof"
	"time"
)

// ExpvarName is the expvar slot the debug server publishes registries under.
const ExpvarName = "scalegnn"

// DebugServer is a running metrics/profiling HTTP listener.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with ":0" in tests).
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *DebugServer) Close() error { return s.srv.Close() }

// ServeDebug starts an HTTP listener exposing the registry and the runtime
// profiler:
//
//	/metrics       — Prometheus text exposition of the registry (prom.go)
//	/debug/vars    — expvar JSON, including the registry under "scalegnn"
//	/debug/pprof/  — net/http/pprof index (profile, heap, goroutine, ...)
//
// The registry may be nil (pprof only, no /metrics). The server runs until
// Close; it is the CLI's -metrics-addr listener, deliberately not wired
// into any training code path — observation stays out-of-band.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	if reg != nil {
		reg.Publish(ExpvarName)
	}
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", MetricsHandler(reg))
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler: mux,
		// A slow or stalled client must not be able to wedge the listener.
		// WriteTimeout stays generous because /debug/pprof/profile and
		// /debug/pprof/trace stream for their ?seconds= duration (30s by
		// default) before the response body is written.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	//lint:ignore naked-go background HTTP listener, not data-parallel work; lifetime bounded by Close
	go func() {
		// Serve returns ErrServerClosed on Close; anything else means the
		// listener died, which out-of-band observation must not escalate
		// into a training failure.
		err := srv.Serve(ln)
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "obs: metrics server: %v\n", err)
		}
	}()
	return &DebugServer{srv: srv, ln: ln}, nil
}

// StartCPUProfile begins a runtime/pprof CPU profile into path, returning a
// stop function that finishes the profile and closes the file — the
// file-based profiling hook behind the CLIs' -pprof flag.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		//lint:ignore unchecked-error profile never started; the create error is the one to report
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		runtimepprof.StopCPUProfile()
		return f.Close()
	}, nil
}
