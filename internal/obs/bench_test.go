package obs_test

import (
	"testing"

	"scalegnn/internal/obs"
)

// BenchmarkSpanDisabled is the overhead contract of the disabled tracer:
// scripts/check.sh fails the build if this reports any allocations. The
// whole Start/Child/SetCount/End sequence must compile down to an atomic
// load and a handful of branches — no clock reads, 0 allocs/op.
func BenchmarkSpanDisabled(b *testing.B) {
	obs.SetTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("bench.disabled")
		child := sp.Child("nested")
		child.SetCount(int64(i))
		child.End()
		sp.End()
	}
}

// BenchmarkSpanDisabledStartEnd is the minimal guarded pair — the cost a
// single disabled instrumentation point adds to a kernel.
func BenchmarkSpanDisabledStartEnd(b *testing.B) {
	obs.SetTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("x")
		sp.End()
	}
}

// BenchmarkSpanDisabledDeferred covers the dominant call pattern
// (`sp := obs.Start(...); defer sp.End()`): the deferred pointer-receiver
// call must not force the span to escape to the heap.
func BenchmarkSpanDisabledDeferred(b *testing.B) {
	obs.SetTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		func() {
			sp := obs.Start("bench.disabled")
			defer sp.End()
		}()
	}
}

// BenchmarkRequestSpanDisabled extends the overhead contract to the
// request-span path: with no tracer installed, StartRequest must return
// the disabled span without minting a trace id or reading the clock, and
// every annotation (Link, SetWait) must be a guarded no-op — 0 allocs/op,
// enforced by the same check.sh awk guard as BenchmarkSpanDisabled.
func BenchmarkRequestSpanDisabled(b *testing.B) {
	obs.SetTracer(nil)
	tc, _ := obs.ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.StartRequest("bench.request", tc)
		sp.Link(42)
		sp.SetWait(1)
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("bench.enabled")
		sp.End()
	}
}

// BenchmarkCounterRefDisabled pins the unbound-ref fast path: one atomic
// pointer load, no increment, 0 allocs (the tensor pool / par.Range
// instrumentation runs this on every call when metrics are off).
func BenchmarkCounterRefDisabled(b *testing.B) {
	var ref obs.CounterRef
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref.Add(1)
	}
}

func BenchmarkCounterRefBound(b *testing.B) {
	reg := obs.NewRegistry()
	var ref obs.CounterRef
	ref.Bind(reg.Counter("bench.bound"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := obs.NewRegistry()
	h := reg.Histogram("bench.hist", obs.DefaultDurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-5)
	}
}
