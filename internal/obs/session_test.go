package obs_test

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"scalegnn/internal/obs"
)

func TestSessionZeroOptionsIsInert(t *testing.T) {
	sess, err := obs.StartSession(obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Tracer != nil || sess.Registry != nil || sess.Addr() != "" {
		t.Errorf("zero-option session allocated state: %+v", sess)
	}
	if obs.Enabled() {
		t.Error("zero-option session installed a tracer")
	}
	if err := sess.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

func TestSessionWritesTraceOnClose(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	sess, err := obs.StartSession(obs.Options{TraceOut: path})
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		t.Fatal("session did not install the tracer")
	}
	sp := obs.Start("session.work")
	sp.End()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if obs.Enabled() {
		t.Error("tracer still installed after Close")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("trace has %d lines, want 1:\n%s", len(lines), data)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("trace line not valid JSON: %v", err)
	}
	if rec["name"] != "session.work" {
		t.Errorf("trace holds %v, want the session.work span", rec["name"])
	}
	// Double Close must be safe (the CLIs close explicitly before os.Exit on
	// failure paths and again via defer on the normal path).
	if err := sess.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestSessionBadTracePathFailsFast(t *testing.T) {
	_, err := obs.StartSession(obs.Options{TraceOut: t.TempDir() + "/no/such/dir/t.jsonl"})
	if err == nil {
		t.Fatal("StartSession accepted an unwritable trace path")
	}
	if obs.Enabled() {
		t.Error("failed StartSession left a tracer installed")
	}
}

func TestSessionMetricsListener(t *testing.T) {
	sess, err := obs.StartSession(obs.Options{MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Registry == nil {
		t.Fatal("session with metrics listener has no registry")
	}
	if sess.Addr() == "" {
		t.Fatal("listener has no bound address")
	}
	sess.Registry.Counter("session.metric").Add(1)
	body := httpGet(t, "http://"+sess.Addr()+"/debug/vars")
	if !strings.Contains(body, "session.metric") {
		t.Errorf("/debug/vars missing session metric: %.200s", body)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}
