package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"scalegnn/internal/obs"
	"scalegnn/internal/par"
)

func TestSpanNesting(t *testing.T) {
	tr := obs.NewTracer()
	root := tr.Start("run")
	child := root.Child("epoch")
	grand := child.Child("batch")
	grand.SetCount(7)
	grand.End()
	child.End()
	if d := root.End(); d <= 0 {
		t.Errorf("root duration %v, want > 0", d)
	}

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]obs.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["epoch"].Parent != byName["run"].ID {
		t.Errorf("epoch parent %d, want run id %d", byName["epoch"].Parent, byName["run"].ID)
	}
	if byName["batch"].Parent != byName["epoch"].ID {
		t.Errorf("batch parent %d, want epoch id %d", byName["batch"].Parent, byName["epoch"].ID)
	}
	if byName["run"].Parent != 0 {
		t.Errorf("run should have no parent, got %d", byName["run"].Parent)
	}
	if byName["batch"].Count != 7 {
		t.Errorf("batch count %d, want 7", byName["batch"].Count)
	}
	for _, s := range spans {
		if s.Dur < 0 {
			t.Errorf("span %s has negative duration %v", s.Name, s.Dur)
		}
	}
}

func TestDisabledSpanIsInert(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("tracer unexpectedly installed")
	}
	sp := obs.Start("anything")
	if sp.Active() {
		t.Error("span from disabled tracer reports Active")
	}
	child := sp.Child("nested")
	sp.SetCount(3)
	sp.SetLabel("x")
	if d := child.End(); d != 0 {
		t.Errorf("disabled child End = %v, want 0", d)
	}
	if d := sp.End(); d != 0 {
		t.Errorf("disabled span End = %v, want 0", d)
	}
}

func TestStartTimedWorksWithoutTracer(t *testing.T) {
	sp := obs.StartTimed("section")
	if !sp.Active() {
		t.Error("timed span should be active without a tracer")
	}
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Errorf("timed span measured %v, want >= 1ms", d)
	}
}

func TestSectionRecordsWhenTracingOn(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)
	d := obs.Section("work", func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Errorf("section duration %v, want >= 1ms", d)
	}
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].Name != "work" {
		t.Fatalf("got spans %v, want one named %q", spans, "work")
	}
}

func TestSetTracerSwap(t *testing.T) {
	a, b := obs.NewTracer(), obs.NewTracer()
	if prev := obs.SetTracer(a); prev != nil {
		t.Errorf("unexpected previous tracer %v", prev)
	}
	if prev := obs.SetTracer(b); prev != a {
		t.Error("swap did not return the previous tracer")
	}
	if obs.ActiveTracer() != b {
		t.Error("active tracer not the installed one")
	}
	obs.SetTracer(nil)
	if obs.Enabled() {
		t.Error("tracer still enabled after SetTracer(nil)")
	}
}

// TestConcurrentSpans emits spans from par.Range workers interleaved with
// the main goroutine — the pattern the instrumented propagation kernels
// produce. Run under -race via scripts/check.sh.
func TestConcurrentSpans(t *testing.T) {
	tr := obs.NewTracer()
	obs.SetTracer(tr)
	defer obs.SetTracer(nil)

	prev := par.SetMaxWorkers(4)
	defer par.SetMaxWorkers(prev)

	const n = 512
	root := obs.Start("parallel-root")
	par.Range(n, 1, func(lo, hi int) {
		chunk := root.Child("chunk")
		for i := lo; i < hi; i++ {
			sp := chunk.Child("item")
			sp.SetCount(int64(i))
			sp.End()
		}
		chunk.End()
	})
	root.End()

	spans := tr.Snapshot()
	items, chunks, roots := 0, 0, 0
	for _, s := range spans {
		switch s.Name {
		case "item":
			items++
		case "chunk":
			chunks++
		case "parallel-root":
			roots++
		}
	}
	if items != n {
		t.Errorf("got %d item spans, want %d", items, n)
	}
	if chunks != par.Workers(n, 1) {
		t.Errorf("got %d chunk spans, want %d", chunks, par.Workers(n, 1))
	}
	if roots != 1 {
		t.Errorf("got %d root spans, want 1", roots)
	}
	// IDs must be unique even under concurrent allocation.
	seen := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestWriteJSONLValidAndOrdered(t *testing.T) {
	tr := obs.NewTracer()
	root := tr.Start("a")
	time.Sleep(100 * time.Microsecond)
	mid := tr.Start("b")
	mid.SetLabel("lbl")
	mid.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	prevStart := int64(-1)
	for i, line := range lines {
		var rec struct {
			ID      uint64 `json:"id"`
			Name    string `json:"name"`
			Label   string `json:"label"`
			StartNS int64  `json:"start_ns"`
			DurNS   int64  `json:"dur_ns"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if rec.StartNS < prevStart {
			t.Errorf("line %d starts at %d, before previous %d — not ordered by start", i, rec.StartNS, prevStart)
		}
		prevStart = rec.StartNS
	}
	if !strings.Contains(lines[0], `"name":"a"`) {
		t.Errorf("first line should be span a (earliest start): %s", lines[0])
	}
	if !strings.Contains(lines[1], `"label":"lbl"`) {
		t.Errorf("span b should carry its label: %s", lines[1])
	}
}
