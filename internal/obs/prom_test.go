package obs_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"scalegnn/internal/obs"
)

// promDump renders reg and fails the test on a write error.
func promDump(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

func TestWritePrometheusValidatesAndNames(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("serve.requests").Add(42)
	reg.Counter("serve.cache_hits_total").Add(7) // already suffixed: no double _total
	reg.Gauge("runtime.goroutines").Set(12)
	h := reg.Histogram("serve.request_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // lands in +Inf only

	out := promDump(t, reg)
	if err := obs.ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, needle := range []string{
		"# TYPE serve_requests_total counter",
		"serve_requests_total 42",
		"serve_cache_hits_total 7",
		"# TYPE runtime_goroutines gauge",
		"runtime_goroutines 12",
		"# TYPE serve_request_seconds histogram",
		`serve_request_seconds_bucket{le="0.001"} 1`,
		`serve_request_seconds_bucket{le="0.01"} 1`,
		`serve_request_seconds_bucket{le="0.1"} 2`,
		`serve_request_seconds_bucket{le="+Inf"} 3`,
		"serve_request_seconds_count 3",
		"serve_request_seconds_sum ",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("exposition missing %q\n%s", needle, out)
		}
	}
	if strings.Contains(out, "serve_cache_hits_total_total") {
		t.Errorf("double _total suffix:\n%s", out)
	}
}

func TestWritePrometheusSanitizesDigitFirstNames(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("9lives").Add(1)
	out := promDump(t, reg)
	if !strings.Contains(out, "_9lives_total 1") {
		t.Errorf("digit-first name not prefixed:\n%s", out)
	}
	if err := obs.ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestWritePrometheusLayoutTracksRegistrations(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("first.metric").Add(1)
	if out := promDump(t, reg); !strings.Contains(out, "first_metric_total 1") {
		t.Fatalf("first scrape missing metric:\n%s", out)
	}
	// A registration after the first scrape must invalidate the cached
	// layout (the gen counter), not disappear into it.
	reg.Gauge("second.metric").Set(2)
	out := promDump(t, reg)
	if !strings.Contains(out, "second_metric 2") {
		t.Errorf("post-scrape registration missing:\n%s", out)
	}
	if err := obs.ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("http.reqs").Add(3)
	srv := httptest.NewServer(obs.MetricsHandler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PrometheusContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("scrape invalid: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "http_reqs_total 3") {
		t.Errorf("scrape missing counter:\n%s", buf.String())
	}
}

func TestValidateExpositionAccepts(t *testing.T) {
	good := map[string]string{
		"counter":          "# TYPE a counter\na 1\n",
		"gauge with inf":   "# TYPE g gauge\ng +Inf\n",
		"gauge with nan":   "# TYPE g gauge\ng NaN\n",
		"help comment":     "# HELP a something\n# TYPE a counter\na 1\n",
		"labels":           "# TYPE a counter\na{job=\"x\",quote=\"a\\\"b\"} 1\n",
		"timestamp":        "# TYPE a counter\na 1 1700000000000\n",
		"blank lines":      "\n# TYPE a counter\n\na 1\n",
		"no trailing newl": "# TYPE a counter\na 1",
		"histogram": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1.5\nh_count 2\n",
	}
	for name, in := range good {
		if err := obs.ValidateExposition([]byte(in)); err != nil {
			t.Errorf("%s: rejected valid exposition: %v", name, err)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	bad := map[string]string{
		"sample without TYPE":   "a 1\n",
		"illegal name":          "# TYPE 1bad counter\n",
		"unknown kind":          "# TYPE a widget\na 1\n",
		"duplicate TYPE":        "# TYPE a counter\n# TYPE a counter\na 1\n",
		"malformed comment":     "# NOPE a counter\n",
		"no value":              "# TYPE a counter\na\n",
		"bad value":             "# TYPE a counter\na abc\n",
		"bad timestamp":         "# TYPE a counter\na 1 soon\n",
		"unterminated label":    "# TYPE a counter\na{job=\"x} 1\n",
		"illegal label name":    "# TYPE a counter\na{1j=\"x\"} 1\n",
		"bucket without le":     "# TYPE h histogram\nh_bucket 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"non-ascending bounds":  "# TYPE h histogram\nh_bucket{le=\"0.5\"} 1\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"non-cumulative counts": "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.5\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf bucket":   "# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_sum 1\nh_count 1\n",
		"missing _sum":          "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"missing _count":        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"count != +Inf":         "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, in := range bad {
		if err := obs.ValidateExposition([]byte(in)); err == nil {
			t.Errorf("%s: accepted invalid exposition:\n%s", name, in)
		}
	}
}
