// Package obs is scalegnn's observability substrate: tracing spans,
// runtime metrics, and profiling hooks for the training and propagation
// stack. The comparative GNN-system studies the tutorial surveys all start
// from the same question — where does time and memory go: sampling, gather,
// compute, or propagation? — and this package makes a run answer it with a
// machine-readable timeline instead of ad-hoc benchmarks.
//
// Three pillars, all stdlib-only:
//
//   - Spans (this file + export.go): Tracer records nested, goroutine-safe
//     wall-clock spans; WriteJSONL exports the timeline as one JSON object
//     per line, ordered by start time.
//   - Metrics (metrics.go): a Registry of counters, gauges, and fixed-bucket
//     histograms; CounterRef/GaugeRef gate hot-path instrumentation behind a
//     single atomic pointer load so disabled metrics cost nothing.
//   - Profiling (http.go): ServeDebug exposes the registry via expvar next
//     to net/http/pprof on an opt-in listener; StartCPUProfile wraps the
//     file-based runtime/pprof hooks.
//
// Overhead contract: with no tracer installed, Start/StartTimed/Child/End
// are a single atomic load plus a nil check — zero allocations, no clock
// reads (verified by BenchmarkSpanDisabled and the check.sh guard). With a
// tracer installed, a span costs two clock reads and one mutex-guarded
// append. Observation never touches RNG or model state, so fingerprint
// outputs are bitwise-identical with tracing on or off.
//
// Layering: obs imports only the standard library. Every instrumented
// package (internal/train, internal/tensor, internal/par, internal/ppr,
// internal/sampling, internal/partition, internal/core) imports obs, never
// the other way around. The train.Hook payload types live here (hook.go)
// precisely so obs.TrainHook can satisfy train.Hook without a cycle;
// internal/train re-exports them as type aliases.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects completed spans. It is safe for concurrent use: spans may
// be started and ended from any goroutine (par.Range workers interleave
// with the main goroutine), and each End appends one record under a mutex.
// The zero value is NOT ready; use NewTracer.
type Tracer struct {
	epoch time.Time
	ids   atomic.Uint64

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer returns a tracer whose span offsets are relative to now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// SpanRecord is one completed span. Start is the offset from the tracer's
// construction; Count is the span's optional work measure (rows gathered,
// pushes performed, batch size — 0 when unset). Request-scoped spans
// (StartRequest) additionally carry the 128-bit trace id they belong to,
// the remote parent span id from an inbound W3C traceparent header, span
// links to correlated-but-not-nested spans (a request span links to the
// batch-forward span it was scored in), and the time the work spent queued
// before it ran.
type SpanRecord struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Label  string        `json:"label,omitempty"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Count  int64         `json:"count,omitempty"`
	Trace  string        `json:"trace_id,omitempty"`
	Remote string        `json:"remote_parent,omitempty"`
	Links  []uint64      `json:"links,omitempty"`
	Wait   time.Duration `json:"wait_ns,omitempty"`
}

// Span is an in-flight timing section. The zero Span is the disabled span:
// every method is a cheap no-op, which is what the package-level Start
// returns when no tracer is installed. Spans are values; keep them in a
// local variable and call End exactly once (the obs-span-end gnnlint check
// enforces this).
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	label  string
	count  int64
	start  time.Time
	trace  TraceID
	remote uint64
	links  []uint64
	wait   time.Duration
	// on marks a live (traced or timed) span; the zero Span is off. A plain
	// bool keeps the End/Child/Active guards within the inlining budget,
	// which is what makes the disabled fast path a few nanoseconds.
	on bool
}

// Start begins a root span on the tracer.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, id: t.ids.Add(1), name: name, start: time.Now(), on: true}
}

// Child begins a span nested under s. On a disabled span it returns another
// disabled span, so instrumentation can nest unconditionally.
func (s *Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return s.child(name)
}

// child is the traced slow path of Child, outlined so the nil guard inlines.
// Children inherit the parent's trace id, so every span under a request (or
// a traced training run) can be grouped by one trace_id.
func (s *Span) child(name string) Span {
	return Span{tr: s.tr, id: s.tr.ids.Add(1), parent: s.id, name: name, start: s.tr.now(), trace: s.trace, on: true}
}

// now is a clock read; split out so timed-but-untraced spans share it.
func (t *Tracer) now() time.Time { return time.Now() }

// Active reports whether the span records anything. Call sites that would
// allocate to build a label (fmt.Sprintf and friends) must guard on it.
func (s *Span) Active() bool { return s.on }

// SetLabel attaches a free-form label (experiment ID, transform name) to
// the span's record. No-op when the span is disabled — but building the
// label string may allocate, so guard with Active when the label is
// computed.
func (s *Span) SetLabel(label string) {
	if s.tr != nil {
		s.label = label
	}
}

// SetCount attaches a work measure (rows, pushes, iterations) to the span's
// record. No-op when disabled.
func (s *Span) SetCount(n int64) {
	if s.tr != nil {
		s.count = n
	}
}

// AddCount accumulates into the span's work measure. No-op when disabled.
func (s *Span) AddCount(n int64) {
	if s.tr != nil {
		s.count += n
	}
}

// SpanID returns the span's tracer-local id (0 on a disabled span). It is
// what Link targets and what an outbound traceparent header advertises as
// the parent span id.
func (s *Span) SpanID() uint64 { return s.id }

// TraceID returns the 128-bit trace id the span belongs to (the zero
// TraceID on disabled or non-request spans).
func (s *Span) TraceID() TraceID { return s.trace }

// Link records a correlation to another span that is neither parent nor
// child — the fan-in edge: a request span links to the shared
// batch-forward span that scored it, and the batch span links back to
// every request span it served. No-op when the span is disabled or the
// target id is 0 (a disabled span's SpanID).
func (s *Span) Link(id uint64) {
	if s.tr != nil && id != 0 {
		s.links = append(s.links, id)
	}
}

// SetWait records how long the span's work sat queued before running (a
// serving request's time in the dispatcher queue). No-op when disabled.
func (s *Span) SetWait(d time.Duration) {
	if s.tr != nil {
		s.wait = d
	}
}

// End completes the span, returning its wall-clock duration. On a tracer
// span the record is appended to the tracer's buffer; on a timed-only span
// (StartTimed with no tracer installed) only the duration is returned; on a
// disabled span End returns 0 without reading the clock. End must be called
// exactly once; a second call records a duplicate span.
func (s *Span) End() time.Duration {
	if !s.on {
		return 0
	}
	return s.end()
}

// end is the timed slow path of End, outlined so the disabled guard inlines.
func (s *Span) end() time.Duration {
	d := time.Since(s.start)
	if t := s.tr; t != nil {
		rec := SpanRecord{
			ID: s.id, Parent: s.parent, Name: s.name, Label: s.label,
			Start: s.start.Sub(t.epoch), Dur: d, Count: s.count,
			Links: s.links, Wait: s.wait,
		}
		if !s.trace.IsZero() {
			rec.Trace = s.trace.String()
		}
		if s.remote != 0 {
			rec.Remote = hexUint64(s.remote)
		}
		t.mu.Lock()
		t.spans = append(t.spans, rec)
		t.mu.Unlock()
	}
	return d
}

// Len returns the number of completed spans.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Snapshot returns a copy of the completed spans sorted by start offset
// (ties broken by ID, which is allocation order).
func (t *Tracer) Snapshot() []SpanRecord {
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sortSpans(out)
	return out
}

// active is the process-wide tracer used by the package-level Start. A nil
// pointer means tracing is disabled — the guarded fast path.
var active atomic.Pointer[Tracer]

// SetTracer installs (or, with nil, removes) the process-wide tracer and
// returns the previous one. Install before the run being traced starts;
// spans started on the old tracer still End into it.
func SetTracer(t *Tracer) *Tracer {
	if t == nil {
		return active.Swap(nil)
	}
	return active.Swap(t)
}

// ActiveTracer returns the installed tracer (nil when tracing is off).
func ActiveTracer() *Tracer { return active.Load() }

// Enabled reports whether a process-wide tracer is installed.
func Enabled() bool { return active.Load() != nil }

// Start begins a root span on the process-wide tracer. With no tracer
// installed it returns the disabled span without reading the clock.
func Start(name string) Span {
	t := active.Load()
	if t == nil {
		return Span{}
	}
	return t.Start(name)
}

// StartTimed begins a span that measures wall-clock time even when tracing
// is off: End always returns the section's duration. This is the one
// stopwatch in the repo — metrics.Timer sections delegate here — so "timing
// a section" and "emitting its span" can never disagree.
func StartTimed(name string) Span {
	t := active.Load()
	if t == nil {
		return Span{name: name, start: time.Now(), on: true}
	}
	return t.Start(name)
}

// Section times fn as a named section (and records a span when tracing is
// on), returning its duration.
func Section(name string, fn func()) time.Duration {
	sp := StartTimed(name)
	fn()
	return sp.End()
}
