package obs

import (
	"io"
	"log/slog"
)

// log.go is the structured-logging pillar: a thin log/slog setup shared by
// the CLIs so every event line carries the same shape — and, when the event
// happened inside a traced request or run, the same trace_id the JSONL
// timeline and access log use. Correlation is the whole point: grep one
// trace_id and the log lines, the request span, and the batch span it
// links to all line up.

// NewLogger builds the process logger. jsonFormat selects slog's JSON
// handler (one object per line, machine-tailable) over the human text
// handler; level gates verbosity (pass nil for Info).
func NewLogger(w io.Writer, jsonFormat bool, level slog.Leveler) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// TraceAttr returns the trace_id attribute for a log line, or the empty
// Attr — which slog's built-in handlers drop — when there is no trace, so
// call sites can attach it unconditionally.
func TraceAttr(tc TraceContext) slog.Attr {
	if !tc.Valid() {
		return slog.Attr{}
	}
	return slog.String("trace_id", tc.Trace.String())
}

// SpanAttr is TraceAttr for a live span: the usual call site has the span,
// not a TraceContext.
func SpanAttr(sp *Span) slog.Attr {
	if sp == nil {
		return slog.Attr{}
	}
	return TraceAttr(TraceContext{Trace: sp.TraceID()})
}
