package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// prom.go renders a Registry in the Prometheus text exposition format
// (version 0.0.4), so any standard scraper can collect the same metrics
// expvar publishes as JSON. Rendering discipline:
//
//   - metric names are sanitized once (dots → underscores) and cached per
//     registration generation, together with preformatted bucket `le`
//     labels, so a scrape allocates no per-sample state — values are read
//     straight from the atomics into a stack scratch buffer;
//   - counters follow the `_total` naming convention;
//   - histograms render cumulative `_bucket{le=...}` series plus `_sum`
//     and `_count`, with `_count` derived from the same bucket sweep that
//     produced the `+Inf` bucket, so the two can never disagree even while
//     observations land concurrently.
//
// ValidateExposition is the matching strict hand-rolled parser: the
// selftest gate and the tests use it to prove a scrape is well-formed
// without importing any Prometheus client library.

// PrometheusContentType is the Content-Type of the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promLayout is the cached, sorted rendering plan for one registration
// generation.
type promLayout struct {
	gen      uint64
	counters []promCounter
	gauges   []promGauge
	hists    []promHist
}

type promCounter struct {
	name string // sanitized, with _total suffix
	c    *Counter
}

type promGauge struct {
	name string
	g    *Gauge
}

type promHist struct {
	name string
	h    *Histogram
	le   []string // preformatted upper-bound labels, one per finite bucket
}

// promName sanitizes a registry metric name into the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are dotted ("serve.request_seconds");
// dots and any other illegal byte become underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// layout returns the cached rendering plan, rebuilding it only when a
// registration happened since it was built.
func (r *Registry) layout() *promLayout {
	gen := r.gen.Load()
	if l := r.prom.Load(); l != nil && l.gen == gen {
		return l
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	gen = r.gen.Load() // re-read under the lock: registration bumps gen first
	if l := r.prom.Load(); l != nil && l.gen == gen {
		return l
	}
	l := &promLayout{gen: gen}
	for name, c := range r.counters {
		n := promName(name)
		if !strings.HasSuffix(n, "_total") {
			n += "_total"
		}
		l.counters = append(l.counters, promCounter{name: n, c: c})
	}
	for name, g := range r.gauges {
		l.gauges = append(l.gauges, promGauge{name: promName(name), g: g})
	}
	for name, h := range r.histograms {
		ph := promHist{name: promName(name), h: h}
		for _, b := range h.bounds {
			ph.le = append(ph.le, strconv.FormatFloat(b, 'g', -1, 64))
		}
		l.hists = append(l.hists, ph)
	}
	sort.Slice(l.counters, func(i, j int) bool { return l.counters[i].name < l.counters[j].name })
	sort.Slice(l.gauges, func(i, j int) bool { return l.gauges[i].name < l.gauges[j].name })
	sort.Slice(l.hists, func(i, j int) bool { return l.hists[i].name < l.hists[j].name })
	r.prom.Store(l)
	return l
}

// promWriter accumulates the first write error so render loops stay flat
// (bufio errors are sticky; this just stops formatting work early too).
type promWriter struct {
	w   *bufio.Writer
	err error
}

func (pw *promWriter) str(s string) {
	if pw.err == nil {
		_, pw.err = pw.w.WriteString(s)
	}
}

func (pw *promWriter) bytes(b []byte) {
	if pw.err == nil {
		_, pw.err = pw.w.Write(b)
	}
}

// WritePrometheus renders every registered metric in the text exposition
// format, names sorted within each kind. Safe for concurrent use with
// registration and observation.
func (r *Registry) WritePrometheus(w io.Writer) error {
	l := r.layout()
	pw := &promWriter{w: bufio.NewWriter(w)}
	var scratch [32]byte
	for _, c := range l.counters {
		pw.str("# TYPE ")
		pw.str(c.name)
		pw.str(" counter\n")
		pw.str(c.name)
		pw.str(" ")
		pw.bytes(strconv.AppendInt(scratch[:0], c.c.Value(), 10))
		pw.str("\n")
	}
	for _, g := range l.gauges {
		pw.str("# TYPE ")
		pw.str(g.name)
		pw.str(" gauge\n")
		pw.str(g.name)
		pw.str(" ")
		pw.bytes(appendPromFloat(scratch[:0], g.g.Value()))
		pw.str("\n")
	}
	for _, h := range l.hists {
		pw.str("# TYPE ")
		pw.str(h.name)
		pw.str(" histogram\n")
		// One sweep produces the cumulative buckets, the +Inf bucket, and
		// _count: monotone by construction, and _count == +Inf always.
		var cum int64
		for i, le := range h.le {
			cum += h.h.counts[i].Load()
			pw.str(h.name)
			pw.str("_bucket{le=\"")
			pw.str(le)
			pw.str("\"} ")
			pw.bytes(strconv.AppendInt(scratch[:0], cum, 10))
			pw.str("\n")
		}
		cum += h.h.counts[len(h.le)].Load()
		pw.str(h.name)
		pw.str("_bucket{le=\"+Inf\"} ")
		pw.bytes(strconv.AppendInt(scratch[:0], cum, 10))
		pw.str("\n")
		pw.str(h.name)
		pw.str("_sum ")
		pw.bytes(appendPromFloat(scratch[:0], h.h.Sum()))
		pw.str("\n")
		pw.str(h.name)
		pw.str("_count ")
		pw.bytes(strconv.AppendInt(scratch[:0], cum, 10))
		pw.str("\n")
	}
	if pw.err != nil {
		return pw.err
	}
	return pw.w.Flush()
}

// appendPromFloat formats v the way the exposition format expects,
// including the +Inf/-Inf/NaN spellings.
func appendPromFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// MetricsHandler serves the registry as a Prometheus scrape target — the
// `/metrics` endpoint mounted on the obs debug server and on gnnserve.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		// A mid-body failure means the scraper hung up; there is no
		// channel left to report it on.
		_ = r.WritePrometheus(w)
	})
}

// ValidateExposition is a strict hand-rolled parser for the text
// exposition format (no Prometheus client dependency). It rejects:
// malformed lines, illegal metric names, unparsable values, samples with
// no preceding # TYPE, duplicate TYPE declarations, and — for histograms —
// missing +Inf buckets, non-cumulative bucket sequences, out-of-order le
// bounds, missing _sum, and _count disagreeing with the +Inf bucket.
func ValidateExposition(data []byte) error {
	types := make(map[string]string)
	type histState struct {
		lastLe   float64
		lastCum  float64
		infSeen  bool
		inf      float64
		sumSeen  bool
		cntSeen  bool
		cnt      float64
		buckets  int
		declared bool
	}
	hists := make(map[string]*histState)
	histOf := func(name string) (*histState, string, bool) {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, found := strings.CutSuffix(name, suffix)
			if found && types[base] == "histogram" {
				h := hists[base]
				if h == nil {
					h = &histState{lastLe: math.Inf(-1), declared: true}
					hists[base] = h
				}
				return h, suffix, true
			}
		}
		return nil, "", false
	}

	lineNo := 0
	for len(data) > 0 {
		lineNo++
		line := data
		if i := strings.IndexByte(string(data), '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		s := string(line)
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			fields := strings.Fields(s)
			if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				return fmt.Errorf("prom: line %d: malformed comment %q", lineNo, s)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("prom: line %d: TYPE wants `# TYPE name kind`", lineNo)
				}
				name, kind := fields[2], fields[3]
				if !validPromName(name) {
					return fmt.Errorf("prom: line %d: illegal metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("prom: line %d: unknown metric type %q", lineNo, kind)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("prom: line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = kind
			}
			continue
		}

		name, labels, value, err := parsePromSample(s)
		if err != nil {
			return fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		if _, typed := types[name]; !typed {
			h, suffix, isHist := histOf(name)
			if !isHist {
				return fmt.Errorf("prom: line %d: sample %q has no preceding # TYPE", lineNo, name)
			}
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("prom: line %d: histogram bucket without le label", lineNo)
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("prom: line %d: bad le %q", lineNo, le)
					}
				}
				if bound <= h.lastLe {
					return fmt.Errorf("prom: line %d: bucket bounds not ascending (%v after %v)", lineNo, bound, h.lastLe)
				}
				if value < h.lastCum {
					return fmt.Errorf("prom: line %d: bucket counts not cumulative (%v after %v)", lineNo, value, h.lastCum)
				}
				h.lastLe, h.lastCum, h.buckets = bound, value, h.buckets+1
				if math.IsInf(bound, 1) {
					h.infSeen, h.inf = true, value
				}
			case "_sum":
				h.sumSeen = true
			case "_count":
				h.cntSeen, h.cnt = true, value
			}
		}
	}
	for name, h := range hists {
		if !h.infSeen {
			return fmt.Errorf("prom: histogram %q has no +Inf bucket", name)
		}
		if !h.sumSeen {
			return fmt.Errorf("prom: histogram %q has no _sum", name)
		}
		if !h.cntSeen {
			return fmt.Errorf("prom: histogram %q has no _count", name)
		}
		if h.cnt != h.inf {
			return fmt.Errorf("prom: histogram %q: _count %v != +Inf bucket %v", name, h.cnt, h.inf)
		}
	}
	return nil
}

// validPromName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parsePromSample parses one sample line: name[{label="value",...}] value
// [timestamp].
func parsePromSample(s string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := s
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		name, rest = rest[:i], rest[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label in %q", s)
			}
			key := rest[:eq]
			if !validPromName(key) {
				return "", nil, 0, fmt.Errorf("illegal label name %q", key)
			}
			rest = rest[eq+2:]
			end := -1
			for j := 0; j < len(rest); j++ {
				if rest[j] == '\\' {
					j++
					continue
				}
				if rest[j] == '"' {
					end = j
					break
				}
			}
			if end < 0 {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", s)
			}
			labels[key] = rest[:end]
			rest = rest[end+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return "", nil, 0, fmt.Errorf("malformed label block in %q", s)
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample %q has no value", s)
		}
		name, rest = rest[:sp], rest[sp:]
	}
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("illegal metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q wants `name value [timestamp]`", s)
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, err
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parsePromValue parses a sample value, honoring the +Inf/-Inf/NaN tokens.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "Nan":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}
