package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtime.go is the periodic runtime sampler: Go runtime health (heap, GC,
// goroutines) folded into the same Registry the serving and training
// metrics live in, so one /metrics scrape answers "is the process sick"
// next to "is the model slow". Gauges cost one atomic store to set, so the
// sampler's steady-state overhead is a handful of stores every period.

// StartRuntimeSampler samples runtime.MemStats and goroutine counts into
// reg every period (minimum 1s; 0 or negative defaults to 10s) and returns
// a stop function. The first sample is taken synchronously so gauges are
// populated before the first scrape. stop is idempotent and waits for the
// sampler goroutine to exit.
func StartRuntimeSampler(reg *Registry, every time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if every <= 0 {
		every = 10 * time.Second
	}
	if every < time.Second {
		every = time.Second
	}
	s := &runtimeSampler{
		goroutines:   reg.Gauge("runtime.goroutines"),
		heapAlloc:    reg.Gauge("runtime.heap_alloc_bytes"),
		heapSys:      reg.Gauge("runtime.heap_sys_bytes"),
		heapObjects:  reg.Gauge("runtime.heap_objects"),
		gcCycles:     reg.Gauge("runtime.gc_cycles"),
		gcPauseTotal: reg.Gauge("runtime.gc_pause_total_seconds"),
		gcPauseLast:  reg.Gauge("runtime.gc_pause_last_ns"),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	s.sample()
	//lint:ignore naked-go periodic sampler, not data-parallel work; lifetime bounded by the returned stop function
	go s.loop(every)
	var once sync.Once
	return func() {
		once.Do(func() {
			close(s.quit)
			<-s.done
		})
	}
}

type runtimeSampler struct {
	goroutines   *Gauge
	heapAlloc    *Gauge
	heapSys      *Gauge
	heapObjects  *Gauge
	gcCycles     *Gauge
	gcPauseTotal *Gauge
	gcPauseLast  *Gauge
	quit         chan struct{}
	done         chan struct{}
}

func (s *runtimeSampler) loop(every time.Duration) {
	defer close(s.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sample()
		case <-s.quit:
			s.sample() // final sample so a flush-then-scrape sees fresh values
			return
		}
	}
}

func (s *runtimeSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.goroutines.Set(float64(runtime.NumGoroutine()))
	s.heapAlloc.Set(float64(ms.HeapAlloc))
	s.heapSys.Set(float64(ms.HeapSys))
	s.heapObjects.Set(float64(ms.HeapObjects))
	s.gcCycles.Set(float64(ms.NumGC))
	s.gcPauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)
	if ms.NumGC > 0 {
		s.gcPauseLast.Set(float64(ms.PauseNs[(ms.NumGC+255)%256]))
	}
}
