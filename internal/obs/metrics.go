package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry names and owns a process's metrics. All allocation happens at
// registration time (Counter/Gauge/Histogram lookups create the metric on
// first use); the instruments themselves are lock-free atomics, so the
// training hot path records without allocating or blocking. Safe for
// concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	// gen counts registrations; the Prometheus exposition caches its
	// sorted, name-sanitized sample layout until gen moves, so a scrape
	// allocates no per-sample state (prom.go).
	gen  atomic.Uint64
	prom atomic.Pointer[promLayout]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count. The nil *Counter is valid
// and ignores Add — instrumentation can hold one unconditionally.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n; no-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64 instrument. The nil *Gauge ignores Set.
type Gauge struct{ bits atomic.Uint64 }

// Set records the gauge's current value; no-op on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a streaming histogram over a fixed, registration-time bucket
// layout: observation v lands in the first bucket with v <= bound, or the
// implicit +Inf overflow bucket. Observe is a binary search plus one atomic
// increment — no allocation, no lock.
type Histogram struct {
	bounds []float64      // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1, last is +Inf overflow
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	max    atomic.Uint64  // float64 bits of the largest observation, CAS-maxed
	n      atomic.Int64
}

// DefaultDurationBuckets is the bucket layout (in seconds) used for span
// and batch duration histograms: 1µs to ~100s, roughly 4 per decade.
var DefaultDurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10, 25, 50, 100,
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
	// -Inf is below every observation, so the CAS-max in Observe needs no
	// "first observation" special case.
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value; no-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.n.Add(1)
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the total of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Max returns the largest observation so far (0 with no observations).
func (h *Histogram) Max() float64 {
	if h == nil || h.n.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// observation (0 with no observations) — the streaming approximation used
// for p50/p99 reporting. When the quantile lands in the +Inf overflow
// bucket the tracked maximum observation is returned instead of +Inf, so
// latency-SLO arithmetic downstream always sees a finite number.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i == len(h.bounds) {
				return h.Max()
			}
			return h.bounds[i]
		}
	}
	return h.Max()
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.gen.Add(1)
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.gen.Add(1)
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with the
// given bucket bounds; later calls with the same name reuse the first
// layout.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
		r.gen.Add(1)
	}
	return h
}

// Snapshot returns the current value of every metric, keyed by name.
// Histograms contribute <name>.count, <name>.sum, <name>.p50, <name>.p99.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+4*len(r.histograms))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name+".count"] = float64(h.Count())
		out[name+".sum"] = h.Sum()
		out[name+".p50"] = h.Quantile(0.5)
		out[name+".p99"] = h.Quantile(0.99)
	}
	return out
}

// String renders the snapshot as a JSON object with sorted keys,
// implementing expvar.Var so a registry can be published wholesale.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		v := snap[name]
		b.WriteString(fmt.Sprintf("%q: ", name))
		switch {
		case math.IsInf(v, 1):
			b.WriteString(`"+Inf"`)
		case math.IsInf(v, -1):
			b.WriteString(`"-Inf"`)
		case math.IsNaN(v):
			b.WriteString(`"NaN"`)
		default:
			b.WriteString(fmt.Sprintf("%g", v))
		}
	}
	b.WriteByte('}')
	return b.String()
}

var _ expvar.Var = (*Registry)(nil)

// Publish exposes the registry under the given expvar name. Safe to call
// more than once for the same name (expvar.Publish panics on duplicates;
// Publish swaps instead, so tests and repeated CLI runs in one process
// behave).
func (r *Registry) Publish(name string) {
	if v := expvar.Get(name); v != nil {
		if holder, ok := v.(*registryVar); ok {
			holder.p.Store(r)
			return
		}
		// Name taken by a foreign Var: nothing safe to do.
		return
	}
	holder := &registryVar{}
	holder.p.Store(r)
	expvar.Publish(name, holder)
}

// registryVar is the swappable expvar slot backing Publish.
type registryVar struct{ p atomic.Pointer[Registry] }

func (v *registryVar) String() string {
	r := v.p.Load()
	if r == nil {
		return "{}"
	}
	return r.String()
}

// CounterRef gates hot-path counting behind one atomic pointer load:
// instrumented packages declare a package-level CounterRef and call Add
// unconditionally. Until Bind is called the ref is disabled and Add is a
// load-and-branch — no atomic increment, no overhead worth measuring
// (BenchmarkCounterRefDisabled pins 0 allocs).
type CounterRef struct{ p atomic.Pointer[Counter] }

// Bind points the ref at a registered counter (nil unbinds).
func (r *CounterRef) Bind(c *Counter) { r.p.Store(c) }

// Add increments the bound counter, if any.
func (r *CounterRef) Add(n int64) {
	if c := r.p.Load(); c != nil {
		c.v.Add(n)
	}
}

// GaugeRef is CounterRef's last-value sibling.
type GaugeRef struct{ p atomic.Pointer[Gauge] }

// Bind points the ref at a registered gauge (nil unbinds).
func (r *GaugeRef) Bind(g *Gauge) { r.p.Store(g) }

// Set records v on the bound gauge, if any.
func (r *GaugeRef) Set(v float64) {
	if g := r.p.Load(); g != nil {
		g.Set(v)
	}
}
