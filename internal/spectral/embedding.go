package spectral

import (
	"fmt"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

// BasisEmbeddings precomputes the basis-polynomial embeddings
// H_k = B_k(L)·X for k = 0..degree, where B_k is the k-th basis polynomial
// (λ^k or T_k). This is the decoupled precomputation step of
// AdaptKry/UniFilter-style adaptive filters: the expensive graph work is
// done once, after which learning a filter reduces to learning the K+1
// scalar combination weights — mini-batchable with no graph access.
func BasisEmbeddings(op *graph.Operator, x *tensor.Matrix, degree int, basis Basis) []*tensor.Matrix {
	out := make([]*tensor.Matrix, 0, degree+1)
	out = append(out, x.Clone())
	if degree == 0 {
		return out
	}
	switch basis {
	case Monomial:
		cur := x
		for k := 1; k <= degree; k++ {
			cur = lap(op, cur)
			out = append(out, cur.Clone())
		}
	case Chebyshev:
		ltilde := func(m *tensor.Matrix) *tensor.Matrix {
			pm := op.Apply(m)
			pm.Scale(-1)
			return pm
		}
		tPrev := x.Clone()
		tCur := ltilde(x)
		out = append(out, tCur.Clone())
		for k := 2; k <= degree; k++ {
			tNext := ltilde(tCur)
			tNext.Scale(2)
			tNext.Sub(tPrev)
			out = append(out, tNext.Clone())
			tPrev, tCur = tCur, tNext
		}
	default:
		panic(fmt.Sprintf("spectral: unknown basis %d", int(basis)))
	}
	return out
}

// Combine evaluates Σ_k coeffs[k]·embeddings[k]. Together with
// BasisEmbeddings it factors Filter.Apply into precompute + cheap combine.
func Combine(embeddings []*tensor.Matrix, coeffs []float64) *tensor.Matrix {
	if len(embeddings) == 0 {
		panic("spectral: Combine with no embeddings")
	}
	if len(coeffs) != len(embeddings) {
		panic(fmt.Sprintf("spectral: %d coeffs for %d embeddings", len(coeffs), len(embeddings)))
	}
	out := tensor.New(embeddings[0].Rows, embeddings[0].Cols)
	for k, h := range embeddings {
		if coeffs[k] != 0 {
			out.AddScaled(coeffs[k], h)
		}
	}
	return out
}

// ChannelKind names one channel of a multi-filter embedding.
type ChannelKind int

const (
	// ChannelIdentity is the raw feature channel (h(λ)=1).
	ChannelIdentity ChannelKind = iota
	// ChannelLowPass is K-step smoothing ((1−λ/2)^K), the homophilous signal.
	ChannelLowPass
	// ChannelHighPass is the K-step difference filter ((λ/2)^K), the
	// heterophilous signal.
	ChannelHighPass
	// ChannelPPR is the truncated personalized-PageRank filter.
	ChannelPPR
	// ChannelAdjPower is (1−λ)^K — Â^K on a self-looped operator.
	ChannelAdjPower
	// ChannelLapPower is λ^K — the complementary high-pass.
	ChannelLapPower
)

func (c ChannelKind) String() string {
	switch c {
	case ChannelIdentity:
		return "identity"
	case ChannelLowPass:
		return "lowpass"
	case ChannelHighPass:
		return "highpass"
	case ChannelPPR:
		return "ppr"
	case ChannelAdjPower:
		return "adjpower"
	case ChannelLapPower:
		return "lappower"
	default:
		return fmt.Sprintf("ChannelKind(%d)", int(c))
	}
}

// ChannelSpec configures one channel of a MultiFilter embedding.
type ChannelSpec struct {
	Kind  ChannelKind
	Hops  int     // polynomial degree K
	Alpha float64 // PPR restart probability (ChannelPPR only)
}

// MultiFilter produces the LD2-style combined embedding: each channel is a
// different spectral view of the same features, concatenated column-wise.
// Low-pass captures homophilous structure, high-pass heterophilous
// structure, identity preserves raw attributes; a downstream MLP learns
// which view matters — with plain mini-batch training, since the graph is
// consumed only here.
func MultiFilter(op *graph.Operator, x *tensor.Matrix, channels []ChannelSpec) (*tensor.Matrix, error) {
	if len(channels) == 0 {
		return nil, fmt.Errorf("spectral: MultiFilter needs at least one channel")
	}
	mats := make([]*tensor.Matrix, len(channels))
	for i, ch := range channels {
		var f *Filter
		switch ch.Kind {
		case ChannelIdentity:
			f = Identity()
		case ChannelLowPass:
			f = LowPass(ch.Hops)
		case ChannelHighPass:
			f = HighPass(ch.Hops)
		case ChannelPPR:
			if ch.Alpha <= 0 || ch.Alpha > 1 {
				return nil, fmt.Errorf("spectral: channel %d: ppr alpha %v outside (0,1]", i, ch.Alpha)
			}
			f = PPRFilter(ch.Alpha, ch.Hops)
		case ChannelAdjPower:
			f = AdjacencyPower(ch.Hops)
		case ChannelLapPower:
			f = LaplacianPower(ch.Hops)
		default:
			return nil, fmt.Errorf("spectral: channel %d: unknown kind %d", i, int(ch.Kind))
		}
		mats[i] = f.Apply(op, x)
	}
	return ConcatColumns(mats), nil
}

// ConcatColumns stacks matrices with equal row counts side by side. It is
// generic over the tensor element type; float64 call sites are unchanged.
func ConcatColumns[T tensor.Elem](mats []*tensor.Mat[T]) *tensor.Mat[T] {
	if len(mats) == 0 {
		return tensor.NewOf[T](0, 0)
	}
	rows := mats[0].Rows
	total := 0
	for _, m := range mats {
		if m.Rows != rows {
			panic("spectral: ConcatColumns row mismatch")
		}
		total += m.Cols
	}
	out := tensor.NewOf[T](rows, total)
	for i := 0; i < rows; i++ {
		dst := out.Row(i)
		off := 0
		for _, m := range mats {
			copy(dst[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}
