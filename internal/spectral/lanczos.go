package spectral

import (
	"fmt"
	"math"
	"math/rand/v2"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

// Lanczos runs the symmetric Lanczos process on the normalized Laplacian
// L = I − P for k steps and returns the Ritz values (eigenvalue estimates)
// of the resulting tridiagonal matrix, sorted ascending. The extremal Ritz
// values converge rapidly to λ_min and λ_max — the quantities spectral GNNs
// need to rescale their polynomial bases.
func Lanczos(op *graph.Operator, k int, rng *rand.Rand) ([]float64, error) {
	n := op.G.N
	if n == 0 {
		return nil, fmt.Errorf("spectral: Lanczos on empty graph")
	}
	if k > n {
		k = n
	}
	if k < 1 {
		return nil, fmt.Errorf("spectral: Lanczos needs k >= 1, got %d", k)
	}
	applyL := func(x []float64) []float64 {
		px := op.ApplyVec(x)
		out := make([]float64, n)
		for i := range out {
			out[i] = x[i] - px[i]
		}
		return out
	}
	alpha := make([]float64, 0, k)
	beta := make([]float64, 0, k)

	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	tensor.Normalize(v)
	var vPrev []float64
	var betaPrev float64
	for j := 0; j < k; j++ {
		w := applyL(v)
		a := tensor.Dot(w, v)
		alpha = append(alpha, a)
		tensor.Axpy(-a, v, w)
		if vPrev != nil {
			tensor.Axpy(-betaPrev, vPrev, w)
		}
		// Full reorthogonalization is overkill for the extremal estimates we
		// need; one re-pass against v keeps the process stable enough.
		tensor.Axpy(-tensor.Dot(w, v), v, w)
		b := tensor.Norm2(w)
		if b < 1e-12 {
			break // invariant subspace found; Ritz values already exact
		}
		beta = append(beta, b)
		tensor.ScaleVec(1/b, w)
		vPrev, v = v, w
		betaPrev = b
	}
	return tridiagEigen(alpha, beta[:max(0, len(alpha)-1)])
}

// LambdaMax estimates the largest eigenvalue of the normalized Laplacian via
// a k-step Lanczos process. For connected non-bipartite graphs this is < 2;
// bipartite graphs reach exactly 2.
func LambdaMax(op *graph.Operator, k int, rng *rand.Rand) (float64, error) {
	ritz, err := Lanczos(op, k, rng)
	if err != nil {
		return 0, err
	}
	return ritz[len(ritz)-1], nil
}

// tridiagEigen computes all eigenvalues of the symmetric tridiagonal matrix
// with diagonal a and off-diagonal b using the implicit QL algorithm with
// Wilkinson shifts (the classic tql1 routine). Returns them sorted
// ascending.
func tridiagEigen(a, b []float64) ([]float64, error) {
	n := len(a)
	if len(b) != n-1 && !(n == 0 && len(b) == 0) && !(n == 1 && len(b) == 0) {
		return nil, fmt.Errorf("spectral: tridiag needs %d off-diagonals, got %d", n-1, len(b))
	}
	if n == 0 {
		return nil, nil
	}
	d := append([]float64(nil), a...)
	e := make([]float64, n)
	copy(e, b)
	const maxIter = 50
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find small off-diagonal to split.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= 1e-15*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter == maxIter {
				return nil, fmt.Errorf("spectral: QL failed to converge at row %d", l)
			}
			// Wilkinson shift.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				bb := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*bb
				p = s * r
				d[i+1] = g + p
				g = c*r - bb
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	// Insertion sort (n is small: Lanczos steps).
	for i := 1; i < n; i++ {
		v := d[i]
		j := i - 1
		for j >= 0 && d[j] > v {
			d[j+1] = d[j]
			j--
		}
		d[j+1] = v
	}
	return d, nil
}

// DenseSpectrum computes the full eigenvalue list of the normalized
// Laplacian by materializing it densely and running Jacobi rotations.
// O(n³); tests and tiny graphs only.
func DenseSpectrum(op *graph.Operator) []float64 {
	n := op.G.N
	l := tensor.New(n, n)
	dense := op.Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -dense.At(i, j)
			if i == j {
				v += 1
			}
			l.Set(i, j, v)
		}
	}
	vals, _ := JacobiEigen(l, 200)
	return vals
}

// JacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi rotations,
// returning eigenvalues (ascending) and the matrix of column eigenvectors.
// Intended for small matrices (coarsened graphs, implicit-GNN closed forms,
// tests); cost is O(n³) per sweep.
func JacobiEigen(m *tensor.Matrix, maxSweeps int) ([]float64, *tensor.Matrix) {
	n := m.Rows
	if n != m.Cols {
		panic("spectral: JacobiEigen needs a square matrix")
	}
	a := m.Clone()
	v := tensor.New(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a.At(i, i)
	}
	// Sort eigenpairs ascending by value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		j := i
		for j > 0 && vals[idx[j-1]] > vals[idx[j]] {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
	sortedVals := make([]float64, n)
	sortedVecs := tensor.New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs
}

// SubspaceIteration computes the approximate top-k eigenpairs of the
// operator P (equivalently the BOTTOM-k of the Laplacian L = I − P) by
// orthogonal (block power) iteration: Q ← orth(P·Q). Returns eigenvalue
// estimates (Rayleigh quotients, descending) and the n×k matrix of
// orthonormal eigenvector estimates. O(iters · k · m) — the scalable path
// to the low-frequency eigenbasis that spectral condensation matches.
func SubspaceIteration(op *graph.Operator, k, iters int, rng *rand.Rand) ([]float64, *tensor.Matrix, error) {
	n := op.G.N
	if k < 1 || k > n {
		return nil, nil, fmt.Errorf("spectral: subspace k=%d outside [1,%d]", k, n)
	}
	if iters < 1 {
		return nil, nil, fmt.Errorf("spectral: subspace iters=%d < 1", iters)
	}
	// Oversampling: iterate with extra columns so the wanted eigenpairs
	// converge at the (larger) gap to the discarded ones — the standard
	// randomized-subspace trick.
	kk := min(n, k+5)
	q := tensor.RandNormal(n, kk, 1, rng)
	orthonormalize(q)
	for it := 0; it < iters; it++ {
		q = op.Apply(q)
		orthonormalize(q)
	}
	// Rayleigh-Ritz: diagonalize Qᵀ P Q to rotate Q into eigenvector
	// estimates and read off eigenvalues.
	pq := op.Apply(q)
	small := tensor.TMatMul(q, pq) // kk x kk, symmetric up to convergence error
	// Symmetrize against numerical drift.
	st := small.T()
	small.Add(st)
	small.Scale(0.5)
	vals, vecs := JacobiEigen(small, 100)
	rotated := tensor.MatMul(q, vecs)
	// JacobiEigen sorts ascending; keep the top k of kk, descending.
	outVals := make([]float64, k)
	outVecs := tensor.New(n, k)
	for j := 0; j < k; j++ {
		src := kk - 1 - j
		outVals[j] = vals[src]
		for i := 0; i < n; i++ {
			outVecs.Set(i, j, rotated.At(i, src))
		}
	}
	return outVals, outVecs, nil
}

// orthonormalize applies modified Gram-Schmidt to the columns of q in
// place. Columns that collapse numerically are re-randomized against a
// deterministic fallback basis.
func orthonormalize(q *tensor.Matrix) {
	n, k := q.Rows, q.Cols
	col := make([]float64, n)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			col[i] = q.At(i, j)
		}
		for p := 0; p < j; p++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += col[i] * q.At(i, p)
			}
			for i := 0; i < n; i++ {
				col[i] -= dot * q.At(i, p)
			}
		}
		norm := tensor.Norm2(col)
		if norm < 1e-12 {
			// Degenerate column: replace with a unit basis vector offset by
			// the column index to stay deterministic.
			for i := range col {
				col[i] = 0
			}
			col[(j*2654435761)%n] = 1
			norm = 1
		}
		inv := 1 / norm
		for i := 0; i < n; i++ {
			q.Set(i, j, col[i]*inv)
		}
	}
}
