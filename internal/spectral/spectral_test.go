package spectral

import (
	"math"
	"testing"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

func symOp(t *testing.T, g *graph.CSR) *graph.Operator {
	t.Helper()
	return graph.NewOperator(g, graph.NormSymmetric, false)
}

func TestLowPassResponse(t *testing.T) {
	f := LowPass(3)
	if got := f.EvalScalar(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("h(0) = %v, want 1", got)
	}
	if got := f.EvalScalar(2); math.Abs(got) > 1e-12 {
		t.Errorf("h(2) = %v, want 0", got)
	}
	if got := f.EvalScalar(1); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("h(1) = %v, want (1/2)^3", got)
	}
}

func TestHighPassResponse(t *testing.T) {
	f := HighPass(2)
	if got := f.EvalScalar(0); math.Abs(got) > 1e-12 {
		t.Errorf("h(0) = %v, want 0", got)
	}
	if got := f.EvalScalar(2); math.Abs(got-1) > 1e-12 {
		t.Errorf("h(2) = %v, want 1", got)
	}
}

func TestPPRFilterResponse(t *testing.T) {
	// At λ=0 (adjacency eigenvalue 1) the truncated PPR response is
	// α Σ_{k≤K} (1-α)^k.
	alpha, K := 0.2, 10
	f := PPRFilter(alpha, K)
	var want float64
	for k := 0; k <= K; k++ {
		want += alpha * math.Pow(1-alpha, float64(k))
	}
	if got := f.EvalScalar(0); math.Abs(got-want) > 1e-10 {
		t.Errorf("h(0) = %v, want %v", got, want)
	}
}

// TestFilterApplyMatchesEigendecomposition is the central correctness test:
// applying the polynomial by sparse recurrence must equal filtering each
// eigencomponent by h(λ_i).
func TestFilterApplyMatchesEigendecomposition(t *testing.T) {
	rng := tensor.NewRand(1)
	g := graph.ErdosRenyi(20, 45, rng)
	op := symOp(t, g)
	vals, vecs := laplacianEigen(op)
	x := tensor.RandNormal(g.N, 3, 1, rng)

	filters := map[string]*Filter{
		"lowpass3":  LowPass(3),
		"highpass2": HighPass(2),
		"ppr":       PPRFilter(0.15, 8),
		"cheb":      {Basis: Chebyshev, Coeffs: []float64{0.5, -0.3, 0.2, 0.1}},
	}
	for name, f := range filters {
		fast := f.Apply(op, x)
		want := applyViaEigen(vals, vecs, f, x)
		if !fast.Equal(want, 1e-8) {
			t.Errorf("%s: recurrence disagrees with eigendecomposition (max diff %v)",
				name, maxDiff(fast, want))
		}
	}
}

func maxDiff(a, b *tensor.Matrix) float64 {
	d := a.Clone()
	d.Sub(b)
	return d.MaxAbs()
}

// laplacianEigen densely diagonalizes L = I - P.
func laplacianEigen(op *graph.Operator) ([]float64, *tensor.Matrix) {
	n := op.G.N
	l := tensor.New(n, n)
	dense := op.Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -dense.At(i, j)
			if i == j {
				v++
			}
			l.Set(i, j, v)
		}
	}
	return JacobiEigen(l, 100)
}

// applyViaEigen computes h(L)X = V h(Λ) Vᵀ X.
func applyViaEigen(vals []float64, vecs *tensor.Matrix, f *Filter, x *tensor.Matrix) *tensor.Matrix {
	vtx := tensor.TMatMul(vecs, x)
	for i := 0; i < vtx.Rows; i++ {
		h := f.EvalScalar(vals[i])
		row := vtx.Row(i)
		for j := range row {
			row[j] *= h
		}
	}
	return tensor.MatMul(vecs, vtx)
}

func TestChebyshevFitRecoversTarget(t *testing.T) {
	target := func(l float64) float64 { return math.Exp(-2 * l) } // heat kernel
	f := ChebyshevFit(target, 12)
	for _, l := range []float64{0, 0.3, 0.7, 1.0, 1.5, 2.0} {
		if got := f.EvalScalar(l); math.Abs(got-target(l)) > 1e-6 {
			t.Errorf("fit(%v) = %v, want %v", l, got, target(l))
		}
	}
}

func TestLaplacianSpectrumRange(t *testing.T) {
	rng := tensor.NewRand(2)
	g := graph.ErdosRenyi(25, 60, rng)
	op := symOp(t, g)
	vals := DenseSpectrum(op)
	if math.Abs(vals[0]) > 1e-8 {
		t.Errorf("λ_min = %v, want 0", vals[0])
	}
	for _, v := range vals {
		if v < -1e-8 || v > 2+1e-8 {
			t.Fatalf("eigenvalue %v outside [0,2]", v)
		}
	}
}

func TestBipartiteLambdaMaxIsTwo(t *testing.T) {
	// Even cycles are bipartite: λ_max = 2 exactly.
	g := graph.Cycle(8)
	op := symOp(t, g)
	vals := DenseSpectrum(op)
	if math.Abs(vals[len(vals)-1]-2) > 1e-8 {
		t.Errorf("bipartite λ_max = %v, want 2", vals[len(vals)-1])
	}
}

func TestLanczosMatchesDense(t *testing.T) {
	rng := tensor.NewRand(3)
	g := graph.ErdosRenyi(40, 120, rng)
	op := symOp(t, g)
	dense := DenseSpectrum(op)
	lmax, err := LambdaMax(op, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lmax-dense[len(dense)-1]) > 1e-4 {
		t.Errorf("Lanczos λ_max = %v, dense = %v", lmax, dense[len(dense)-1])
	}
}

func TestLanczosValidation(t *testing.T) {
	rng := tensor.NewRand(4)
	g := graph.Path(5)
	op := symOp(t, g)
	if _, err := Lanczos(op, 0, rng); err == nil {
		t.Error("k=0 should error")
	}
}

func TestTridiagEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	vals, err := tridiagEigen([]float64{2, 2}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-10 || math.Abs(vals[1]-3) > 1e-10 {
		t.Errorf("eigenvalues = %v, want [1 3]", vals)
	}
	// 1x1.
	vals, err = tridiagEigen([]float64{5}, nil)
	if err != nil || vals[0] != 5 {
		t.Errorf("1x1 = %v, %v", vals, err)
	}
}

func TestJacobiEigenOrthonormal(t *testing.T) {
	rng := tensor.NewRand(5)
	a := tensor.RandNormal(8, 8, 1, rng)
	// Symmetrize.
	at := a.T()
	a.Add(at)
	vals, vecs := JacobiEigen(a, 100)
	// VᵀV = I.
	vtv := tensor.TMatMul(vecs, vecs)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(vtv.At(i, j)-want) > 1e-8 {
				t.Fatalf("VᵀV[%d,%d] = %v", i, j, vtv.At(i, j))
			}
		}
	}
	// A v_i = λ_i v_i.
	for i := 0; i < 8; i++ {
		v := make([]float64, 8)
		for r := 0; r < 8; r++ {
			v[r] = vecs.At(r, i)
		}
		av := tensor.MatVec(a, v)
		for r := 0; r < 8; r++ {
			if math.Abs(av[r]-vals[i]*v[r]) > 1e-7 {
				t.Fatalf("eigenpair %d violated at row %d", i, r)
			}
		}
	}
	// Ascending order.
	for i := 1; i < 8; i++ {
		if vals[i] < vals[i-1] {
			t.Fatal("eigenvalues not sorted")
		}
	}
}

func TestBasisEmbeddingsMatchFilter(t *testing.T) {
	rng := tensor.NewRand(6)
	g := graph.ErdosRenyi(15, 30, rng)
	op := symOp(t, g)
	x := tensor.RandNormal(g.N, 2, 1, rng)
	coeffs := []float64{0.3, -0.2, 0.5, 0.1}
	for _, basis := range []Basis{Monomial, Chebyshev} {
		embs := BasisEmbeddings(op, x, 3, basis)
		if len(embs) != 4 {
			t.Fatalf("%v: got %d embeddings", basis, len(embs))
		}
		combined := Combine(embs, coeffs)
		direct := (&Filter{Basis: basis, Coeffs: coeffs}).Apply(op, x)
		if !combined.Equal(direct, 1e-10) {
			t.Errorf("%v: precompute+combine != direct filter", basis)
		}
	}
}

func TestMultiFilterShapeAndContent(t *testing.T) {
	rng := tensor.NewRand(7)
	g := graph.ErdosRenyi(12, 25, rng)
	op := symOp(t, g)
	x := tensor.RandNormal(g.N, 4, 1, rng)
	emb, err := MultiFilter(op, x, []ChannelSpec{
		{Kind: ChannelIdentity},
		{Kind: ChannelLowPass, Hops: 2},
		{Kind: ChannelHighPass, Hops: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if emb.Rows != g.N || emb.Cols != 12 {
		t.Fatalf("shape = %dx%d, want %dx12", emb.Rows, emb.Cols, g.N)
	}
	// First channel is the identity — raw features.
	for i := 0; i < g.N; i++ {
		for j := 0; j < 4; j++ {
			if emb.At(i, j) != x.At(i, j) {
				t.Fatal("identity channel altered features")
			}
		}
	}
}

func TestMultiFilterValidation(t *testing.T) {
	rng := tensor.NewRand(8)
	g := graph.Path(4)
	op := symOp(t, g)
	x := tensor.RandNormal(4, 2, 1, rng)
	if _, err := MultiFilter(op, x, nil); err == nil {
		t.Error("no channels should error")
	}
	if _, err := MultiFilter(op, x, []ChannelSpec{{Kind: ChannelPPR, Hops: 2, Alpha: 0}}); err == nil {
		t.Error("bad alpha should error")
	}
}

func TestConcatColumns(t *testing.T) {
	a := tensor.FromSlice(2, 1, []float64{1, 2})
	b := tensor.FromSlice(2, 2, []float64{3, 4, 5, 6})
	c := ConcatColumns([]*tensor.Matrix{a, b})
	want := tensor.FromSlice(2, 3, []float64{1, 3, 4, 2, 5, 6})
	if !c.Equal(want, 0) {
		t.Errorf("concat = %v", c.Data)
	}
	if ConcatColumns[float64](nil).Rows != 0 {
		t.Error("empty concat should be empty")
	}
}

func TestBasisString(t *testing.T) {
	if Monomial.String() != "monomial" || Chebyshev.String() != "chebyshev" {
		t.Error("Basis.String wrong")
	}
	if ChannelLowPass.String() != "lowpass" || ChannelPPR.String() != "ppr" {
		t.Error("ChannelKind.String wrong")
	}
}

func BenchmarkFilterApply(b *testing.B) {
	rng := tensor.NewRand(1)
	g := graph.BarabasiAlbert(5000, 5, rng)
	op := graph.NewOperator(g, graph.NormSymmetric, false)
	x := tensor.RandNormal(g.N, 32, 1, rng)
	f := LowPass(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Apply(op, x)
	}
}

func TestAdjacencyPowerEqualsOperatorPower(t *testing.T) {
	// On a self-looped operator, AdjacencyPower(K) must equal Â^K exactly.
	rng := tensor.NewRand(41)
	g := graph.ErdosRenyi(25, 60, rng)
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	x := tensor.RandNormal(g.N, 3, 1, rng)
	for k := 1; k <= 4; k++ {
		viaFilter := AdjacencyPower(k).Apply(op, x)
		viaPower := op.PowerApply(x, k)
		if !viaFilter.Equal(viaPower, 1e-10) {
			t.Errorf("K=%d: (1-λ)^K filter != Â^K", k)
		}
	}
}

func TestLaplacianPowerResponse(t *testing.T) {
	f := LaplacianPower(3)
	if got := f.EvalScalar(0); got != 0 {
		t.Errorf("h(0) = %v, want 0", got)
	}
	if got := f.EvalScalar(2); math.Abs(got-8) > 1e-12 {
		t.Errorf("h(2) = %v, want 8", got)
	}
}

func TestAdjLapPowerComplementarity(t *testing.T) {
	// AdjacencyPower(1) + LaplacianPower(1) = all-pass.
	for _, l := range []float64{0, 0.5, 1.3, 2} {
		sum := AdjacencyPower(1).EvalScalar(l) + LaplacianPower(1).EvalScalar(l)
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("complementarity at λ=%v: %v", l, sum)
		}
	}
}

func TestMultiFilterNewChannels(t *testing.T) {
	rng := tensor.NewRand(43)
	g := graph.ErdosRenyi(15, 30, rng)
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	x := tensor.RandNormal(g.N, 2, 1, rng)
	emb, err := MultiFilter(op, x, []ChannelSpec{
		{Kind: ChannelAdjPower, Hops: 2},
		{Kind: ChannelLapPower, Hops: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if emb.Rows != g.N || emb.Cols != 4 {
		t.Fatalf("shape %dx%d", emb.Rows, emb.Cols)
	}
	if ChannelAdjPower.String() != "adjpower" || ChannelLapPower.String() != "lappower" {
		t.Error("new channel names wrong")
	}
}

func TestSubspaceIterationMatchesDense(t *testing.T) {
	rng := tensor.NewRand(71)
	g := graph.ErdosRenyi(40, 120, rng)
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	const k = 4
	vals, vecs, err := SubspaceIteration(op, k, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Dense reference: top-k eigenvalues of P.
	dense := op.Dense()
	dt := dense.T()
	dense.Add(dt)
	dense.Scale(0.5)
	refVals, _ := JacobiEigen(dense, 100)
	for j := 0; j < k; j++ {
		want := refVals[len(refVals)-1-j]
		if math.Abs(vals[j]-want) > 1e-5 {
			t.Errorf("eigenvalue %d: %v, want %v", j, vals[j], want)
		}
	}
	// Columns orthonormal and eigen-equation satisfied.
	for j := 0; j < k; j++ {
		col := make([]float64, g.N)
		for i := 0; i < g.N; i++ {
			col[i] = vecs.At(i, j)
		}
		if math.Abs(tensor.Norm2(col)-1) > 1e-8 {
			t.Fatalf("column %d not unit norm", j)
		}
		pv := op.ApplyVec(col)
		for i := range pv {
			if math.Abs(pv[i]-vals[j]*col[i]) > 1e-3 {
				t.Fatalf("eigen-equation violated for pair %d at row %d", j, i)
			}
		}
	}
}

func TestSubspaceIterationValidation(t *testing.T) {
	rng := tensor.NewRand(72)
	g := graph.Path(5)
	op := graph.NewOperator(g, graph.NormSymmetric, true)
	if _, _, err := SubspaceIteration(op, 0, 10, rng); err == nil {
		t.Error("k=0 should error")
	}
	if _, _, err := SubspaceIteration(op, 2, 0, rng); err == nil {
		t.Error("iters=0 should error")
	}
	if _, _, err := SubspaceIteration(op, 9, 10, rng); err == nil {
		t.Error("k>n should error")
	}
}
