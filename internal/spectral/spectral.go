// Package spectral implements graph spectral filtering: polynomial filters
// over the normalized Laplacian, eigenvalue estimation via the Lanczos
// process, and the multi-filter embedding pipelines used by scalable
// spectral GNNs (tutorial §3.2.1 — LD2, UniFilter, AdaptKry).
//
// A spectral filter h(λ) is applied to node features X as h(L)·X where
// L = I − D^{-1/2} A D^{-1/2} is the symmetric normalized Laplacian, whose
// spectrum lies in [0, 2]. All filters here are polynomials evaluated by
// sparse matrix-vector recurrences, so applying a degree-K filter costs
// K sparse products — never an explicit eigendecomposition. That is the
// property that keeps spectral GNNs scalable.
package spectral

import (
	"fmt"
	"math"

	"scalegnn/internal/graph"
	"scalegnn/internal/tensor"
)

// Basis selects the polynomial basis used to express a filter.
type Basis int

const (
	// Monomial expresses h(λ) = Σ c_k λ^k.
	Monomial Basis = iota
	// Chebyshev expresses h on the rescaled spectrum λ' = λ − 1 ∈ [−1,1]
	// as Σ c_k T_k(λ'), the numerically stable basis used by ChebNet and
	// recommended by the UniFilter/AdaptKry line of work.
	Chebyshev
)

func (b Basis) String() string {
	switch b {
	case Monomial:
		return "monomial"
	case Chebyshev:
		return "chebyshev"
	default:
		return fmt.Sprintf("Basis(%d)", int(b))
	}
}

// Filter is a fixed-coefficient polynomial spectral filter.
type Filter struct {
	Basis  Basis
	Coeffs []float64 // Coeffs[k] multiplies the k-th basis polynomial
}

// Degree returns the polynomial degree of the filter.
func (f *Filter) Degree() int { return len(f.Coeffs) - 1 }

// Apply computes h(L)·X where L is the normalized Laplacian derived from
// op (op must be the NormSymmetric adjacency operator; L·x = x − op·x).
func (f *Filter) Apply(op *graph.Operator, x *tensor.Matrix) *tensor.Matrix {
	if len(f.Coeffs) == 0 {
		return tensor.New(x.Rows, x.Cols)
	}
	switch f.Basis {
	case Monomial:
		return f.applyMonomial(op, x)
	case Chebyshev:
		return f.applyChebyshev(op, x)
	default:
		panic(fmt.Sprintf("spectral: unknown basis %d", int(f.Basis)))
	}
}

// lap computes L·x = x − P·x into a fresh matrix.
func lap(op *graph.Operator, x *tensor.Matrix) *tensor.Matrix {
	px := op.Apply(x)
	out := x.Clone()
	out.Sub(px)
	return out
}

func (f *Filter) applyMonomial(op *graph.Operator, x *tensor.Matrix) *tensor.Matrix {
	// Horner-free accumulation: track L^k x incrementally.
	out := x.Clone()
	out.Scale(f.Coeffs[0])
	cur := x
	for k := 1; k < len(f.Coeffs); k++ {
		cur = lap(op, cur)
		if f.Coeffs[k] != 0 {
			out.AddScaled(f.Coeffs[k], cur)
		}
	}
	return out
}

func (f *Filter) applyChebyshev(op *graph.Operator, x *tensor.Matrix) *tensor.Matrix {
	// Basis argument is L̃ = L − I (spectrum in [−1, 1] assuming λmax = 2):
	// L̃·x = −P·x. Recurrence: T_0 = X, T_1 = L̃X, T_{k} = 2 L̃ T_{k-1} − T_{k-2}.
	ltilde := func(m *tensor.Matrix) *tensor.Matrix {
		pm := op.Apply(m)
		pm.Scale(-1)
		return pm
	}
	out := x.Clone()
	out.Scale(f.Coeffs[0])
	if len(f.Coeffs) == 1 {
		return out
	}
	tPrev := x.Clone()
	tCur := ltilde(x)
	out.AddScaled(f.Coeffs[1], tCur)
	for k := 2; k < len(f.Coeffs); k++ {
		tNext := ltilde(tCur)
		tNext.Scale(2)
		tNext.Sub(tPrev)
		if f.Coeffs[k] != 0 {
			out.AddScaled(f.Coeffs[k], tNext)
		}
		tPrev, tCur = tCur, tNext
	}
	return out
}

// EvalScalar evaluates the filter's frequency response h(λ) at a scalar
// eigenvalue λ ∈ [0, 2]. Used for tests and for plotting responses.
func (f *Filter) EvalScalar(lambda float64) float64 {
	switch f.Basis {
	case Monomial:
		var s, p float64
		p = 1
		for _, c := range f.Coeffs {
			s += c * p
			p *= lambda
		}
		return s
	case Chebyshev:
		x := lambda - 1
		var s float64
		tPrev, tCur := 1.0, x
		for k, c := range f.Coeffs {
			switch k {
			case 0:
				s += c * 1
			case 1:
				s += c * x
			default:
				tNext := 2*x*tCur - tPrev
				tPrev, tCur = tCur, tNext
				s += c * tCur
			}
		}
		return s
	default:
		panic("spectral: unknown basis")
	}
}

// LowPass returns the (1 − λ/2)^K monomial filter: the smoothing operator
// implicit in K rounds of GCN-style propagation. Strong at λ=0, zero at λ=2.
func LowPass(k int) *Filter {
	// (1 - λ/2)^K expanded into monomial coefficients via binomial theorem.
	coeffs := make([]float64, k+1)
	for j := 0; j <= k; j++ {
		coeffs[j] = binom(k, j) * math.Pow(-0.5, float64(j))
	}
	return &Filter{Basis: Monomial, Coeffs: coeffs}
}

// HighPass returns the (λ/2)^K monomial filter: passes the high-frequency
// (heterophilous) end of the spectrum, zero at λ=0.
func HighPass(k int) *Filter {
	coeffs := make([]float64, k+1)
	coeffs[k] = math.Pow(0.5, float64(k))
	return &Filter{Basis: Monomial, Coeffs: coeffs}
}

// AdjacencyPower returns the h(λ) = (1−λ)^K monomial filter. On an
// operator built with self-loops this is exactly Â^K — the SGC smoothing —
// expressed as a spectral polynomial, with the self signal diluted by
// degree normalization rather than kept at constant weight.
func AdjacencyPower(k int) *Filter {
	coeffs := make([]float64, k+1)
	for j := 0; j <= k; j++ {
		coeffs[j] = binom(k, j) * math.Pow(-1, float64(j))
	}
	return &Filter{Basis: Monomial, Coeffs: coeffs}
}

// LaplacianPower returns the h(λ) = λ^K monomial filter — the complementary
// high-pass to AdjacencyPower, amplifying neighbor disagreement.
func LaplacianPower(k int) *Filter {
	coeffs := make([]float64, k+1)
	coeffs[k] = 1
	return &Filter{Basis: Monomial, Coeffs: coeffs}
}

// Identity returns the all-pass filter h(λ) = 1.
func Identity() *Filter {
	return &Filter{Basis: Monomial, Coeffs: []float64{1}}
}

// PPRFilter returns the degree-K truncated personalized-PageRank filter
// h(λ) = α Σ_{k≤K} (1−α)^k (1−λ)^k — the APPNP propagation expressed as a
// spectral polynomial (here 1−λ is the symmetric adjacency eigenvalue).
func PPRFilter(alpha float64, k int) *Filter {
	// Σ_j c_j λ^j where the (1-λ)^k terms are expanded.
	coeffs := make([]float64, k+1)
	for kk := 0; kk <= k; kk++ {
		w := alpha * math.Pow(1-alpha, float64(kk))
		for j := 0; j <= kk; j++ {
			coeffs[j] += w * binom(kk, j) * math.Pow(-1, float64(j))
		}
	}
	return &Filter{Basis: Monomial, Coeffs: coeffs}
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}

// ChebyshevFit fits a degree-k Chebyshev filter to a target response
// h: [0,2] → R by Chebyshev-Gauss quadrature on the rescaled domain —
// how UniFilter-style universal bases project an arbitrary desired response
// onto an efficiently applicable polynomial.
func ChebyshevFit(target func(lambda float64) float64, degree int) *Filter {
	n := degree + 1
	coeffs := make([]float64, n)
	// Chebyshev nodes x_j = cos(π(j+0.5)/N) on [−1,1]; λ = x + 1.
	const quadN = 256
	for k := 0; k < n; k++ {
		var s float64
		for j := 0; j < quadN; j++ {
			theta := math.Pi * (float64(j) + 0.5) / quadN
			x := math.Cos(theta)
			s += target(x+1) * math.Cos(float64(k)*theta)
		}
		coeffs[k] = 2 * s / quadN
	}
	coeffs[0] /= 2
	return &Filter{Basis: Chebyshev, Coeffs: coeffs}
}
